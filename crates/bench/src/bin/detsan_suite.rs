//! `detsan_suite`: end-to-end schedule-invariance acceptance run for the
//! concurrency sanitizer.
//!
//! Without `--cfg detsan` this binary is a no-op (exit 0): the sanitizer's
//! pool hooks are compiled out, so there is no schedule to fuzz.
//!
//! Under `--cfg detsan` the parent re-executes itself once per thread count
//! (the rayon shim reads `RAYON_NUM_THREADS` once per process) with
//! `DETSAN=1`, so lock-site tracking is live for the whole child.  Each
//! child:
//!
//! 1. builds the paper's n≈3k Poisson problem and the strongest
//!    preconditioner available — DDM-GNN two-level f64 when the pretrained
//!    model loads, DDM-LU two-level otherwise,
//! 2. solves once under the FIFO baseline schedule and once per fuzzed
//!    schedule seed, hashing the residual history chained with the solution
//!    vector exactly as `perf_suite` does,
//! 3. prints its live/suppressed sanitizer finding counts and, when asked,
//!    writes `sanitizer::report().render_json()` to the report path.
//!
//! The parent asserts that every hash — all thread counts, all seeds — is
//! bit-identical, that the hash matches the committed `BENCH_parallel.json`
//! pin (when running the default problem size), and that the tracked run
//! produced **zero** live sanitizer findings.
//!
//! Usage:
//!   RUSTFLAGS="--cfg detsan" cargo run -p bench --bin detsan_suite
//! Environment:
//!   DETSAN_SUITE_SEEDS    fuzzed schedule seeds per child    (default 64;
//!                         CI smoke uses 8)
//!   DETSAN_SUITE_THREADS  comma-separated thread counts      (default 1,2,4)
//!   DETSAN_SUITE_SIZE     target node count                  (default 3000;
//!                         non-default sizes skip the committed-pin check)
//!   DETSAN_SUITE_REPORT   JSON findings-report path          (default
//!                         detsan-report.json, written by the parent's
//!                         max-thread-count child)

#[cfg(not(detsan))]
fn main() {
    eprintln!(
        "detsan_suite: compiled without --cfg detsan; the sanitizer hooks are \
         compiled out and there is no schedule to fuzz (exit 0)"
    );
}

#[cfg(detsan)]
fn main() {
    if std::env::var("DETSAN_SUITE_CHILD").is_ok() {
        detsan::child();
    } else {
        detsan::parent();
    }
}

#[cfg(detsan)]
mod detsan {
    use std::collections::BTreeMap;
    use std::process::Command;
    use std::sync::Arc;

    use ddm::{AdditiveSchwarz, AsmLevel};
    use ddm_gnn::{generate_problem, load_pretrained, DdmGnnPreconditioner, Precision};
    use krylov::{preconditioned_conjugate_gradient, Preconditioner, SolverOptions};
    use partition::partition_mesh_with_overlap;

    /// Committed residual-history/solution hashes from `BENCH_parallel.json`
    /// (problem idx 0, n = 3090, target size 3000).  Bit-identical across
    /// thread counts by the pool shim's determinism contract; the suite
    /// extends that pin to every fuzzed schedule.
    const PINNED_HASHES: &[(&str, &str)] =
        &[("pcg-ddm-gnn-2level", "3b4db8001002d99e"), ("pcg-ddm-lu-2level", "7c60b364b117b10a")];

    /// Problem size whose hashes are pinned above.
    const PINNED_SIZE: usize = 3000;

    /// Golden-ratio stride: consecutive indices give unrelated seeds.
    const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

    fn env_usize(name: &str, default: usize) -> usize {
        std::env::var(name).ok().and_then(|s| s.trim().parse().ok()).unwrap_or(default)
    }

    fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
        std::env::var(name)
            .ok()
            .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
            .filter(|v: &Vec<usize>| !v.is_empty())
            .unwrap_or_else(|| default.to_vec())
    }

    /// FNV-1a over the bit patterns of a float sequence — the same
    /// determinism witness `perf_suite` committed to `BENCH_parallel.json`.
    fn hash_f64s(values: impl IntoIterator<Item = f64>) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for v in values {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        }
        h
    }

    // -----------------------------------------------------------------------
    // Child: solve under the baseline and fuzzed schedules at one thread count
    // -----------------------------------------------------------------------

    pub fn child() {
        let threads = rayon::current_num_threads();
        let seeds = env_usize("DETSAN_SUITE_SEEDS", 64);
        let target = env_usize("DETSAN_SUITE_SIZE", PINNED_SIZE);

        let problem = generate_problem(1, target);
        let n = problem.num_unknowns();
        let subdomains = partition_mesh_with_overlap(&problem.mesh, 300, 2, 0);
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(4000);

        let model = load_pretrained().map(Arc::new);
        let (solver, precond): (&str, Box<dyn Preconditioner>) = match &model {
            Some(m) => (
                "pcg-ddm-gnn-2level",
                Box::new(
                    DdmGnnPreconditioner::with_precision(
                        &problem,
                        subdomains.clone(),
                        Arc::clone(m),
                        true,
                        Precision::F64,
                    )
                    .expect("DDM-GNN setup failed"),
                ),
            ),
            None => (
                "pcg-ddm-lu-2level",
                Box::new(
                    AdditiveSchwarz::new(&problem.matrix, subdomains.clone(), AsmLevel::TwoLevel)
                        .expect("ASM setup failed"),
                ),
            ),
        };

        let solve_hash = || -> u64 {
            let result = preconditioned_conjugate_gradient(
                &problem.matrix,
                &problem.rhs,
                None,
                &*precond,
                &opts,
            );
            assert!(result.stats.converged(), "{solver} failed to converge on n={n}");
            hash_f64s(result.stats.history.norms().iter().copied().chain(result.x.iter().copied()))
        };

        sanitizer::clear_schedule_seed();
        let baseline = solve_hash();
        println!(
            "DETSAN kind=solve solver={solver} n={n} threads={threads} seed=baseline \
             hash={baseline:016x}"
        );
        for k in 0..seeds {
            let seed = 0xD5_C4ED ^ (k as u64).wrapping_mul(SEED_STRIDE);
            sanitizer::set_schedule_seed(seed);
            let hash = solve_hash();
            println!(
                "DETSAN kind=solve solver={solver} n={n} threads={threads} seed={seed:016x} \
                 hash={hash:016x}"
            );
        }
        sanitizer::clear_schedule_seed();

        // Findings accumulated over every solve above (DETSAN=1 keeps
        // lock-site tracking live for the whole child process).
        let report = sanitizer::report();
        let live = report.live().count();
        let suppressed = report.allowed().count();
        println!("DETSAN kind=findings threads={threads} live={live} suppressed={suppressed}");
        eprint!("{}", report.render_human_as("detsan"));
        if let Ok(path) = std::env::var("DETSAN_SUITE_REPORT") {
            if !path.is_empty() {
                std::fs::write(&path, report.render_json()).expect("cannot write sanitizer report");
                eprintln!("detsan_suite: wrote {path}");
            }
        }
    }

    // -----------------------------------------------------------------------
    // Parent: orchestrate children, verify hashes and findings
    // -----------------------------------------------------------------------

    type Record = BTreeMap<String, String>;

    fn parse_records(stdout: &str) -> Vec<Record> {
        stdout
            .lines()
            .filter_map(|line| line.strip_prefix("DETSAN "))
            .map(|rest| {
                rest.split_whitespace()
                    .filter_map(|kv| kv.split_once('='))
                    .map(|(k, v)| (k.to_string(), v.to_string()))
                    .collect()
            })
            .collect()
    }

    pub fn parent() {
        let thread_counts = env_list("DETSAN_SUITE_THREADS", &[1, 2, 4]);
        let seeds = env_usize("DETSAN_SUITE_SEEDS", 64);
        let target = env_usize("DETSAN_SUITE_SIZE", PINNED_SIZE);
        let report_path = std::env::var("DETSAN_SUITE_REPORT")
            .unwrap_or_else(|_| "detsan-report.json".to_string());
        let exe = std::env::current_exe().expect("cannot locate detsan_suite executable");
        let report_child = thread_counts.iter().max().copied().unwrap_or(1);

        let mut all: Vec<Record> = Vec::new();
        for &t in &thread_counts {
            eprintln!(
                "detsan_suite: RAYON_NUM_THREADS={t}, {seeds} fuzzed schedule(s), \
                 target size {target} ..."
            );
            let output = Command::new(&exe)
                .env("DETSAN_SUITE_CHILD", "1")
                .env("RAYON_NUM_THREADS", t.to_string())
                // Lock-site tracking live for the whole child, so the
                // findings report covers every fuzzed solve.
                .env("DETSAN", "1")
                .env(
                    "DETSAN_SUITE_REPORT",
                    if t == report_child { report_path.as_str() } else { "" },
                )
                .output()
                .expect("failed to spawn detsan_suite child");
            let stdout = String::from_utf8_lossy(&output.stdout);
            print!("{stdout}");
            eprint!("{}", String::from_utf8_lossy(&output.stderr));
            assert!(output.status.success(), "child (threads={t}) failed");
            all.extend(parse_records(&stdout));
        }

        let mut failures: Vec<String> = Vec::new();

        // Every solve hash — all thread counts, baseline and fuzzed — must
        // be identical, and must match the committed pin at the pinned size.
        let solves: Vec<&Record> =
            all.iter().filter(|r| r.get("kind").map(String::as_str) == Some("solve")).collect();
        if solves.is_empty() {
            failures.push("no solve records produced".to_string());
        }
        let expected: Option<&str> = if target == PINNED_SIZE {
            solves
                .first()
                .and_then(|r| {
                    PINNED_HASHES
                        .iter()
                        .find(|(s, _)| Some(*s) == r.get("solver").map(String::as_str))
                })
                .map(|(_, h)| *h)
        } else {
            None
        };
        let reference: Option<String> =
            expected.map(str::to_string).or_else(|| solves.first().map(|r| r["hash"].clone()));
        if let Some(want) = &reference {
            for rec in &solves {
                if &rec["hash"] != want {
                    failures.push(format!(
                        "{} at {} thread(s), seed {}: hash {} != {want}{}",
                        rec["solver"],
                        rec["threads"],
                        rec["seed"],
                        rec["hash"],
                        if expected.is_some() {
                            " (committed BENCH_parallel.json pin)"
                        } else {
                            ""
                        }
                    ));
                }
            }
        }

        // The tracked runs must be clean: zero live sanitizer findings.
        for rec in all.iter().filter(|r| r.get("kind").map(String::as_str) == Some("findings")) {
            if rec.get("live").map(String::as_str) != Some("0") {
                failures.push(format!(
                    "{} live sanitizer finding(s) at {} thread(s) — see {report_path}",
                    rec["live"], rec["threads"]
                ));
            }
        }

        let schedules = solves.len();
        for f in &failures {
            eprintln!("detsan_suite: FAIL: {f}");
        }
        assert!(failures.is_empty(), "detsan_suite found {} failure(s)", failures.len());
        eprintln!(
            "detsan_suite: PASS — {schedules} solve(s) across {:?} thread(s) bit-identical{}, \
             zero live findings",
            thread_counts,
            if expected.is_some() { " and equal to the committed pin" } else { "" }
        );
    }
}
