//! Fig. 6 — impact of the DSS hyper-parameters (k̄, d) on performance.
//!
//! For each architecture in the grid: train a model, then solve Poisson
//! problems with the corresponding DDM-GNN preconditioner and report
//! (a) the time spent applying the preconditioner (the inference time of
//! Fig. 6a) and (b) the total resolution time, both alongside the iteration
//! count at convergence (Fig. 6b).
//!
//! Environment variables:
//! * `F6_EPOCHS`       — training epochs per architecture, default 20
//! * `F6_SAMPLES`      — dataset cap, default 120
//! * `F6_TARGET_NODES` — size of the evaluation problems, default 3000
//!                       (paper: 10 000)
//! * `F6_PROBLEMS`     — number of evaluation problems, default 2 (paper: 100)
//! * `F6_FULL=1`       — full paper grid of architectures

use std::sync::Arc;

use bench::{env_usize, mean_std, write_csv};
use ddm_gnn::{generate_problem, solve_ddm_gnn};
use gnn::{
    extract_local_problems, train, AdamConfig, DatasetConfig, DssConfig, DssModel, TrainingConfig,
};
use krylov::SolverOptions;
use partition::partition_mesh_with_overlap;

fn main() {
    let epochs = env_usize("F6_EPOCHS", 20);
    let samples_cap = env_usize("F6_SAMPLES", 120);
    let target_nodes = env_usize("F6_TARGET_NODES", 3000);
    let num_problems = env_usize("F6_PROBLEMS", 2);
    let subsize = 200;
    let full_grid = std::env::var("F6_FULL").map(|v| v == "1").unwrap_or(false);

    let grid: Vec<(usize, usize)> = if full_grid {
        vec![
            (5, 5),
            (5, 10),
            (5, 20),
            (10, 5),
            (10, 10),
            (10, 20),
            (20, 5),
            (20, 10),
            (20, 20),
            (30, 10),
        ]
    } else {
        vec![(5, 5), (5, 10), (10, 5), (10, 10), (16, 10)]
    };

    println!("extracting shared training dataset...");
    let samples = extract_local_problems(&DatasetConfig {
        num_global_problems: 3,
        target_nodes: subsize * 4,
        subdomain_size: subsize,
        overlap: 2,
        max_iterations_per_problem: 12,
        max_samples: Some(samples_cap),
        seed: 1,
        ..Default::default()
    });

    println!(
        "\nFIG. 6 — performance vs architecture (evaluation problems of ~{target_nodes} nodes)"
    );
    println!(
        "{:>4} {:>4} | {:>10} {:>16} {:>14} {:>12}",
        "k̄", "d", "weights", "T_gnn/solve [s]", "total T [s]", "iterations"
    );
    let mut csv_rows = Vec::new();

    for (kbar, d) in grid {
        let mut model = DssModel::new(
            DssConfig { num_blocks: kbar, latent_dim: d, alpha: 1.0 / kbar as f64 },
            3,
        );
        let config = TrainingConfig {
            epochs,
            batch_size: 16,
            adam: AdamConfig { learning_rate: 5e-3, clip_norm: Some(1.0), ..Default::default() },
            validation_fraction: 0.15,
            seed: 2,
            ..Default::default()
        };
        train(&mut model, &samples, &config);
        let model = Arc::new(model);

        let mut inference_times = Vec::new();
        let mut total_times = Vec::new();
        let mut iterations = Vec::new();
        for p in 0..num_problems {
            let problem = generate_problem(500 + p as u64, target_nodes);
            let subdomains = partition_mesh_with_overlap(&problem.mesh, subsize, 2, 0);
            let opts = SolverOptions::with_tolerance(1e-6).max_iterations(20_000);
            let outcome =
                solve_ddm_gnn(&problem, subdomains, Arc::clone(&model), true, &opts).unwrap();
            inference_times.push(outcome.preconditioner_seconds);
            total_times.push(outcome.total_seconds);
            iterations.push(outcome.stats.iterations as f64);
        }
        let (ti, _) = mean_std(&inference_times);
        let (tt, _) = mean_std(&total_times);
        let (it, _) = mean_std(&iterations);
        println!(
            "{:>4} {:>4} | {:>10} {:>16.3} {:>14.3} {:>12.0}",
            kbar,
            d,
            model.num_params(),
            ti,
            tt,
            it
        );
        csv_rows.push(format!("{kbar},{d},{},{ti:.4},{tt:.4},{it:.1}", model.num_params()));
    }

    write_csv(
        "fig6_hyperparam_perf.csv",
        "kbar,d,num_weights,inference_seconds,total_seconds,iterations",
        &csv_rows,
    );
}
