//! Multi-level hierarchy benchmark: two-level Nicolaides vs the
//! smoothed-aggregation multi-level coarse path, across problem sizes.
//!
//! For each problem size the suite measures, with exact (LU) local solves:
//!
//! * the hierarchy itself — levels, per-level dimensions, operator
//!   complexity, setup wall time and the V-cycle apply kernel time,
//! * end-to-end PCG — iteration counts and wall times for the two-level
//!   baseline (`pcg-ddm-lu-2level`) and the multi-level coarse path
//!   (`pcg-ddm-lu-ml*`),
//! * when the pre-trained model is present, the same pair with GNN local
//!   solves (`pcg-ddm-gnn-2level` vs `pcg-ddm-gnn-ml*`).
//!
//! The headline claim the report documents: multi-level iteration counts
//! stay flat (or fall) as the problem grows past n ≈ 24k, while the coarse
//! solve stays cheap — the direct factorisation moves from the k×k
//! Nicolaides operator to the ≤`coarsest_max_size` end of the hierarchy.
//!
//! Like `perf_suite`, results go to stdout as `PERF key=value` records and
//! are rendered to a JSON report (`BENCH_multilevel.json`).  The suite is
//! single-process: cross-thread determinism is `perf_suite`'s contract; this
//! one pins the solver trajectory with the same FNV-1a residual-history
//! hash so regressions show up as hash churn in review.
//!
//! Usage:
//!   cargo run --release -p bench --bin multilevel_suite
//! Environment:
//!   PERF_SUITE_SIZES   comma-separated target node counts
//!                      (default "3000,9000,24000,48000")
//!   PERF_SUITE_OUT     output path (default "BENCH_multilevel.json")
//!   PERF_SUITE_SMOKE   when set: one tiny problem and short calibration
//!                      floors — a CI smoke run exercising the whole harness
//!                      in seconds

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use ddm::{Hierarchy, MultilevelConfig};
use ddm_gnn::{generate_problem, load_pretrained, Precision};
use krylov::SolverOptions;
use partition::partition_mesh_with_overlap;

fn smoke_mode() -> bool {
    std::env::var("PERF_SUITE_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0")
}

fn env_list(name: &str, default: &[usize]) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|s| s.split(',').filter_map(|t| t.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| default.to_vec())
}

/// FNV-1a over the bit patterns of a float sequence — the trajectory witness
/// (same function as `perf_suite`).
fn hash_f64s(values: impl IntoIterator<Item = f64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Median/min per-call time with batch-size calibration (same algorithm as
/// `perf_suite::time_kernel`).
fn time_kernel<F: FnMut()>(mut f: F, floor: Duration, samples: usize) -> (u64, u64) {
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        let elapsed = start.elapsed();
        if elapsed >= floor || iters >= 1 << 20 {
            break;
        }
        let projected = if elapsed.is_zero() {
            iters * 8
        } else {
            (floor.as_nanos() as u64).saturating_mul(iters) / (elapsed.as_nanos() as u64).max(1) + 1
        };
        iters = projected.max(iters * 2).min(1 << 20);
    }
    let mut per_call: Vec<u64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            (start.elapsed().as_nanos() as u64) / iters
        })
        .collect();
    per_call.sort_unstable();
    (per_call[per_call.len() / 2], per_call[0])
}

struct E2eRow {
    solver: String,
    idx: usize,
    n: usize,
    wall_ms: f64,
    setup_ms: f64,
    iterations: usize,
    hash: u64,
}

/// Run one solver twice (min wall), record iterations and the trajectory
/// hash, and echo a `PERF` record.
fn run_e2e(
    rows: &mut Vec<E2eRow>,
    idx: usize,
    n: usize,
    name: &str,
    mut solve: impl FnMut() -> sparse::Result<ddm_gnn::SolveOutcome>,
) {
    let mut best_ms = f64::INFINITY;
    let mut record = None;
    for _ in 0..2 {
        let start = Instant::now();
        let outcome = solve().unwrap_or_else(|e| panic!("{name} setup failed on n={n}: {e:?}"));
        let ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(outcome.stats.converged(), "{name} failed to converge on n={n}");
        best_ms = best_ms.min(ms);
        let hash = hash_f64s(
            outcome.stats.history.norms().iter().copied().chain(outcome.x.iter().copied()),
        );
        record = Some((outcome.stats.iterations, hash, outcome.setup_seconds * 1e3));
    }
    let (iterations, hash, setup_ms) = record.unwrap();
    println!(
        "PERF kind=e2e solver={name} idx={idx} n={n} wall_ms={best_ms:.3} setup_ms={setup_ms:.3} iterations={iterations} hash={hash:016x}"
    );
    rows.push(E2eRow {
        solver: name.to_string(),
        idx,
        n,
        wall_ms: best_ms,
        setup_ms,
        iterations,
        hash,
    });
}

struct HierarchyRow {
    idx: usize,
    n: usize,
    levels: usize,
    dims: Vec<usize>,
    operator_complexity: f64,
    setup_ms: f64,
    apply_median_ns: u64,
    apply_min_ns: u64,
}

fn main() {
    let smoke = smoke_mode();
    let default_sizes: &[usize] = if smoke { &[800] } else { &[3000, 9000, 24000, 48000] };
    let sizes = env_list("PERF_SUITE_SIZES", default_sizes);
    let out_path =
        std::env::var("PERF_SUITE_OUT").unwrap_or_else(|_| "BENCH_multilevel.json".to_string());
    let floor = Duration::from_millis(if smoke { 5 } else { 25 });
    let model = load_pretrained().map(std::sync::Arc::new);
    let config = MultilevelConfig::default();

    let mut hier_rows: Vec<HierarchyRow> = Vec::new();
    let mut e2e_rows: Vec<E2eRow> = Vec::new();
    let mut problems_meta: Vec<(usize, usize, usize, usize)> = Vec::new();

    for (idx, &target) in sizes.iter().enumerate() {
        let problem = generate_problem(1 + idx as u64, target);
        let n = problem.num_unknowns();
        let nnz = problem.matrix.nnz();
        // Sub-domains of ~300 nodes, overlap 2 (the paper's configuration).
        let subdomains = partition_mesh_with_overlap(&problem.mesh, 300, 2, 0);
        let k = subdomains.len();
        problems_meta.push((idx, n, nnz, k));
        println!("PERF kind=problem idx={idx} n={n} nnz={nnz} subdomains={k}");

        // Hierarchy construction + V-cycle apply kernel.
        let setup_start = Instant::now();
        let hierarchy = Hierarchy::build(&problem.matrix, &config).expect("hierarchy build");
        let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;
        let dims = hierarchy.level_dims().to_vec();
        let mut z = vec![0.0; n];
        let (med, min) = time_kernel(|| hierarchy.apply_into(&problem.rhs, &mut z), floor, 7);
        println!(
            "PERF kind=hierarchy idx={idx} n={n} levels={} dims={} operator_complexity={:.4} setup_ms={setup_ms:.3} vcycle_median_ns={med} vcycle_min_ns={min}",
            hierarchy.num_levels(),
            dims.iter().map(usize::to_string).collect::<Vec<_>>().join("/"),
            hierarchy.operator_complexity(),
        );
        hier_rows.push(HierarchyRow {
            idx,
            n,
            levels: hierarchy.num_levels(),
            dims,
            operator_complexity: hierarchy.operator_complexity(),
            setup_ms,
            apply_median_ns: med,
            apply_min_ns: min,
        });
        drop(hierarchy);

        // End-to-end PCG: two-level baseline vs multi-level coarse path.
        let opts = SolverOptions::with_tolerance(1e-6).max_iterations(4000);
        let ml_name = format!("pcg-ddm-lu-ml{}", hier_rows.last().unwrap().levels);
        run_e2e(&mut e2e_rows, idx, n, "pcg-ddm-lu-2level", || {
            ddm_gnn::solve_ddm_lu(&problem, subdomains.clone(), true, &opts)
        });
        run_e2e(&mut e2e_rows, idx, n, &ml_name, || {
            ddm_gnn::solve_ddm_lu_multilevel(&problem, subdomains.clone(), &config, &opts)
        });
        if let Some(m) = &model {
            let gnn_ml_name = format!("pcg-ddm-gnn-ml{}", hier_rows.last().unwrap().levels);
            run_e2e(&mut e2e_rows, idx, n, "pcg-ddm-gnn-2level", || {
                ddm_gnn::solve_ddm_gnn_with_precision(
                    &problem,
                    subdomains.clone(),
                    std::sync::Arc::clone(m),
                    true,
                    Precision::F64,
                    &opts,
                )
            });
            run_e2e(&mut e2e_rows, idx, n, &gnn_ml_name, || {
                ddm_gnn::solve_ddm_gnn_multilevel(
                    &problem,
                    subdomains.clone(),
                    std::sync::Arc::clone(m),
                    &config,
                    Precision::F64,
                    &opts,
                )
            });
        }
    }

    // The headline check: multi-level iteration counts must stay flat or
    // fall **past n ≈ 24k** (small sizes are still in the pre-asymptotic
    // regime where a handful of extra iterations is normal).  Tolerate +2
    // iterations of noise between consecutive large sizes.
    let ml_iters: Vec<(usize, usize)> = e2e_rows
        .iter()
        .filter(|r| r.solver.starts_with("pcg-ddm-lu-ml"))
        .map(|r| (r.n, r.iterations))
        .collect();
    let mut scalable = true;
    for pair in ml_iters.windows(2) {
        if pair[0].0 >= 20_000 && pair[1].1 > pair[0].1 + 2 {
            scalable = false;
            eprintln!(
                "multilevel_suite: iteration growth {} (n={}) -> {} (n={})",
                pair[0].1, pair[0].0, pair[1].1, pair[1].0
            );
        }
    }

    let json = render_json(&problems_meta, &hier_rows, &e2e_rows, scalable);
    std::fs::write(&out_path, json).expect("cannot write benchmark report");
    eprintln!("multilevel_suite: wrote {out_path} (iterations flat-or-falling: {scalable})");
    if !smoke {
        assert!(scalable, "multi-level iteration counts grew with problem size");
    }
}

fn render_json(
    problems: &[(usize, usize, usize, usize)],
    hier: &[HierarchyRow],
    e2e: &[E2eRow],
    scalable: bool,
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"command\": \"cargo run --release -p bench --bin multilevel_suite\",");
    let _ = writeln!(
        s,
        "  \"config\": \"MultilevelConfig::default() — smoothed aggregation, weighted-Jacobi smoothing, 1 pre + 1 post sweep\","
    );
    let _ = writeln!(s, "  \"problems\": [");
    for (i, (idx, n, nnz, k)) in problems.iter().enumerate() {
        let comma = if i + 1 < problems.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"idx\": {idx}, \"n\": {n}, \"nnz\": {nnz}, \"subdomains\": {k} }}{comma}"
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"hierarchies\": [");
    for (i, h) in hier.iter().enumerate() {
        let comma = if i + 1 < hier.len() { "," } else { "" };
        let dims = h.dims.iter().map(usize::to_string).collect::<Vec<_>>().join(", ");
        let _ = writeln!(
            s,
            "    {{ \"idx\": {}, \"n\": {}, \"levels\": {}, \"level_dims\": [{}], \"operator_complexity\": {:.4}, \"setup_ms\": {:.3}, \"vcycle_median_ns\": {}, \"vcycle_min_ns\": {} }}{comma}",
            h.idx, h.n, h.levels, dims, h.operator_complexity, h.setup_ms, h.apply_median_ns, h.apply_min_ns
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"end_to_end\": [");
    for (i, r) in e2e.iter().enumerate() {
        let comma = if i + 1 < e2e.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"solver\": \"{}\", \"idx\": {}, \"n\": {}, \"wall_ms\": {:.3}, \"setup_ms\": {:.3}, \"iterations\": {}, \"hash\": \"{:016x}\" }}{comma}",
            r.solver, r.idx, r.n, r.wall_ms, r.setup_ms, r.iterations, r.hash
        );
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"multilevel_iterations_flat_or_falling\": {scalable}");
    let _ = writeln!(s, "}}");
    s
}
