//! Property test: lexing then reassembling the token texts reproduces the
//! input byte-for-byte.  The lexer is *lossless* by contract — every rule
//! in the engine depends on the token stream covering the whole file, so a
//! dropped or duplicated byte would silently blind the analysis.

use lint::lexer::lex;
use proptest::prelude::*;

/// Source fragments chosen to collide in interesting ways when concatenated
/// without separators: comment openers next to string openers, raw-string
/// hashes next to punctuation, lifetimes next to char literals, numbers
/// next to range operators, and deliberately unterminated openers.
const FRAGMENTS: &[&str] = &[
    "fn f() { m.lock().unwrap(); }\n",
    "let x = 1.5e-3;",
    "// line comment with .lock().unwrap()\n",
    "/* block /* nested */ still comment */",
    "/* unterminated",
    "r#\"raw string with unwrap() and panic!\"#",
    "r##\"contains \"# inside\"##",
    "\"plain string with \\\" escape and .lock()\"",
    "b\"byte string\"",
    "br#\"raw byte\"#",
    "'a",
    "'x'",
    "'\\n'",
    "'_'",
    "r#match",
    "0..n",
    "1.max(2)",
    "0x1F_u32",
    "1_000_000",
    "::<f64>()",
    "#[cfg(test)]",
    "#![allow(dead_code)]",
    "mod tests { #[test] fn t() {} }",
    "Instant::now()",
    "λ_unicode_ident",
    "// trailing comment no newline",
    "\n\n\t  ",
    "=> |a, b| a + b",
    "r\"",
    "\"unterminated string",
    "b'",
    "#",
    "'",
    "\"",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn fragment_concatenations_roundtrip(
        idxs in collection::vec(0usize..FRAGMENTS.len(), 0..48),
    ) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let rebuilt: String = lex(&src).iter().map(|t| t.text).collect();
        prop_assert_eq!(rebuilt, src);
    }

    #[test]
    fn arbitrary_char_soup_roundtrips(
        codes in collection::vec(0u32..0xFFFF, 0..200),
    ) {
        // Raw char soup (surrogates filtered): the lexer must never panic
        // or lose bytes even on garbage that is nowhere near valid Rust.
        let src: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let rebuilt: String = lex(&src).iter().map(|t| t.text).collect();
        prop_assert_eq!(rebuilt, src);
    }

    #[test]
    fn token_lines_are_monotonic(
        idxs in collection::vec(0usize..FRAGMENTS.len(), 0..32),
    ) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let toks = lex(&src);
        let mut prev = 1u32;
        for t in &toks {
            prop_assert!(t.line >= prev, "token lines must never decrease");
            prev = t.line;
        }
    }
}
