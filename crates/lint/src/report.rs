//! Output formatting: human-readable and JSON (hand-rolled — no serde).

use crate::rules::Violation;

/// Aggregate result of a lint run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// All findings, live and suppressed.
    pub findings: Vec<Violation>,
}

impl Report {
    /// Live (unallowed) violations.
    pub fn live(&self) -> impl Iterator<Item = &Violation> {
        self.findings.iter().filter(|v| v.is_live())
    }

    /// Suppressed findings.
    pub fn allowed(&self) -> impl Iterator<Item = &Violation> {
        self.findings.iter().filter(|v| !v.is_live())
    }

    /// Whether the run passes (no live violations).
    pub fn passed(&self) -> bool {
        self.live().next().is_none()
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        self.render_human_as("detlint")
    }

    /// Human-readable rendering with the summary line attributed to `tool`
    /// (the sanitizer reuses this report machinery for runtime findings;
    /// `files_scanned` then counts files with registered lock sites).
    pub fn render_human_as(&self, tool: &str) -> String {
        let mut out = String::new();
        for v in self.live() {
            out.push_str(&format!(
                "error[{}]: {}\n  --> {}:{}\n   | {}\n",
                v.rule, v.message, v.file, v.line, v.snippet
            ));
        }
        let n_allowed = self.allowed().count();
        if n_allowed > 0 {
            out.push_str(&format!("suppressed findings ({n_allowed}):\n"));
            for v in self.allowed() {
                out.push_str(&format!(
                    "  [{}] {}:{} — {}\n",
                    v.rule,
                    v.file,
                    v.line,
                    v.allow_reason.as_deref().unwrap_or("")
                ));
            }
        }
        let n_live = self.live().count();
        out.push_str(&format!(
            "{tool}: {} file(s) scanned, {} violation(s), {} suppressed — {}\n",
            self.files_scanned,
            n_live,
            n_allowed,
            if self.passed() { "PASS" } else { "FAIL" }
        ));
        out
    }

    /// JSON rendering (stable field order, fully escaped).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"files_scanned\": {},\n", self.files_scanned));
        out.push_str("  \"violations\": [");
        let live: Vec<&Violation> = self.live().collect();
        for (i, v) in live.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&violation_json(v));
        }
        if !live.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"allowed\": [");
        let allowed: Vec<&Violation> = self.allowed().collect();
        for (i, v) in allowed.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&violation_json(v));
        }
        if !allowed.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"summary\": {{ \"violations\": {}, \"allowed\": {}, \"pass\": {} }}\n",
            live.len(),
            allowed.len(),
            self.passed()
        ));
        out.push_str("}\n");
        out
    }
}

fn violation_json(v: &Violation) -> String {
    let mut s = format!(
        "{{ \"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}",
        json_str(&v.rule),
        json_str(&v.file),
        v.line,
        json_str(&v.message),
        json_str(&v.snippet)
    );
    if let Some(reason) = &v.allow_reason {
        s.push_str(&format!(", \"reason\": {}", json_str(reason)));
    }
    s.push_str(" }");
    s
}

/// Escape a string for JSON output.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            findings: vec![
                Violation {
                    rule: "mutex-poison".into(),
                    file: "crates/x/src/lib.rs".into(),
                    line: 10,
                    message: "bad \"lock\"".into(),
                    snippet: "m.lock().unwrap();".into(),
                    allow_reason: None,
                },
                Violation {
                    rule: "nondet-clock".into(),
                    file: "crates/y/src/lib.rs".into(),
                    line: 3,
                    message: "clock".into(),
                    snippet: "Instant::now()".into(),
                    allow_reason: Some("timing only".into()),
                },
            ],
        }
    }

    #[test]
    fn human_output_mentions_rule_and_location() {
        let r = sample().render_human();
        assert!(r.contains("error[mutex-poison]"));
        assert!(r.contains("crates/x/src/lib.rs:10"));
        assert!(r.contains("FAIL"));
        assert!(r.contains("suppressed findings (1)"));
    }

    #[test]
    fn json_output_is_escaped_and_structured() {
        let j = sample().render_json();
        assert!(j.contains("\"violations\": ["));
        assert!(j.contains("\\\"lock\\\""), "quotes inside messages must be escaped");
        assert!(j.contains("\"reason\": \"timing only\""));
        assert!(j.contains("\"pass\": false"));
    }

    #[test]
    fn empty_report_passes() {
        let r = Report { files_scanned: 5, findings: vec![] };
        assert!(r.passed());
        assert!(r.render_human().contains("PASS"));
        assert!(r.render_json().contains("\"pass\": true"));
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_str("a\tb\nc"), "\"a\\tb\\nc\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }
}
