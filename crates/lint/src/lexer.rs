//! A lossless hand-rolled Rust lexer.
//!
//! The tokenizer never drops a byte: concatenating the `text` slices of the
//! produced tokens reproduces the input source exactly (the round-trip
//! property pinned by `tests/lexer_roundtrip.rs`).  It understands every
//! construct the rules must *not* look inside — line and nested block
//! comments, string / raw-string / byte-string / char literals and
//! lifetimes — so a `.lock().unwrap()` inside a string or a `panic!` in a
//! doc comment can never produce a false finding.
//!
//! It is deliberately *not* a full Rust lexer: compound operators are
//! emitted as single-character [`TokKind::Punct`] tokens (the rules match
//! token sequences, so `::` is simply two `:` tokens) and numeric literal
//! edge cases that do not affect rule matching (`1.` vs `1 .`) may split
//! differently from rustc.  Losslessness, not classification fidelity, is
//! the contract.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// A run of whitespace (may span lines).
    Whitespace,
    /// `// …` up to but excluding the newline.
    LineComment,
    /// `/* … */` with arbitrary nesting; unterminated comments run to EOF.
    BlockComment,
    /// An identifier or keyword.
    Ident,
    /// A raw identifier `r#ident`.
    RawIdent,
    /// A lifetime such as `'a` (or the anonymous `'_`).
    Lifetime,
    /// A char literal `'x'`, including escapes.
    CharLit,
    /// A byte literal `b'x'`.
    ByteLit,
    /// A `"…"` string literal, including escapes.
    StringLit,
    /// A raw string literal `r"…"` / `r#"…"#` (any number of `#`s).
    RawStringLit,
    /// A byte string literal `b"…"`.
    ByteStringLit,
    /// A raw byte string literal `br"…"` / `br#"…"#`.
    RawByteStringLit,
    /// A numeric literal (integer or float, any base, with suffix).
    NumLit,
    /// A single punctuation character.
    Punct,
    /// Anything the lexer could not classify (kept so round-trip holds).
    Unknown,
}

impl TokKind {
    /// Whether the token is a comment (the only place suppressions live).
    pub fn is_comment(self) -> bool {
        matches!(self, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether rules should skip the token when matching code patterns
    /// (whitespace and comments are transparent; literal contents opaque).
    pub fn is_trivia(self) -> bool {
        matches!(self, TokKind::Whitespace | TokKind::LineComment | TokKind::BlockComment)
    }
}

/// One token: kind, exact source slice and 1-based starting line.
#[derive(Clone, Copy, Debug)]
pub struct Token<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

struct Cursor<'a> {
    src: &'a str,
    /// Byte offset of the next unread char.
    pos: usize,
    /// 1-based line of the next unread char.
    line: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Consume chars while `pred` holds.
    fn eat_while(&mut self, mut pred: impl FnMut(char) -> bool) {
        while let Some(c) = self.peek() {
            if !pred(c) {
                break;
            }
            self.bump();
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenize `src` losslessly.
pub fn lex(src: &str) -> Vec<Token<'_>> {
    let mut cur = Cursor { src, pos: 0, line: 1 };
    let mut out = Vec::new();
    while cur.pos < src.len() {
        let start = cur.pos;
        let line = cur.line;
        let kind = next_kind(&mut cur);
        out.push(Token { kind, text: &src[start..cur.pos], line });
    }
    out
}

fn next_kind(cur: &mut Cursor<'_>) -> TokKind {
    let c = match cur.peek() {
        Some(c) => c,
        None => return TokKind::Unknown,
    };
    if c.is_whitespace() {
        cur.eat_while(char::is_whitespace);
        return TokKind::Whitespace;
    }
    if c == '/' {
        match cur.peek2() {
            Some('/') => {
                cur.eat_while(|c| c != '\n');
                return TokKind::LineComment;
            }
            Some('*') => {
                return lex_block_comment(cur);
            }
            _ => {
                cur.bump();
                return TokKind::Punct;
            }
        }
    }
    if c == '\'' {
        return lex_quote(cur);
    }
    if c == '"' {
        lex_string(cur);
        return TokKind::StringLit;
    }
    // Raw strings / byte strings / raw identifiers share ident-looking
    // prefixes, so resolve them before the generic identifier path.
    if c == 'r' {
        match (cur.peek2(), cur.peek3()) {
            (Some('"'), _) | (Some('#'), Some('"')) | (Some('#'), Some('#')) => {
                cur.bump(); // r
                lex_raw_string(cur);
                return TokKind::RawStringLit;
            }
            (Some('#'), Some(c3)) if is_ident_start(c3) => {
                cur.bump(); // r
                cur.bump(); // #
                cur.eat_while(is_ident_continue);
                return TokKind::RawIdent;
            }
            _ => {}
        }
    }
    if c == 'b' {
        match (cur.peek2(), cur.peek3()) {
            (Some('\''), _) => {
                cur.bump(); // b
                lex_char_body(cur);
                return TokKind::ByteLit;
            }
            (Some('"'), _) => {
                cur.bump(); // b
                lex_string(cur);
                return TokKind::ByteStringLit;
            }
            (Some('r'), Some('"')) | (Some('r'), Some('#')) => {
                cur.bump(); // b
                cur.bump(); // r
                lex_raw_string(cur);
                return TokKind::RawByteStringLit;
            }
            _ => {}
        }
    }
    if is_ident_start(c) {
        cur.eat_while(is_ident_continue);
        return TokKind::Ident;
    }
    if c.is_ascii_digit() {
        lex_number(cur);
        return TokKind::NumLit;
    }
    cur.bump();
    TokKind::Punct
}

fn lex_block_comment(cur: &mut Cursor<'_>) -> TokKind {
    cur.bump(); // /
    cur.bump(); // *
    let mut depth = 1usize;
    while depth > 0 {
        match (cur.peek(), cur.peek2()) {
            (Some('/'), Some('*')) => {
                cur.bump();
                cur.bump();
                depth += 1;
            }
            (Some('*'), Some('/')) => {
                cur.bump();
                cur.bump();
                depth -= 1;
            }
            (Some(_), _) => {
                cur.bump();
            }
            (None, _) => break, // unterminated: runs to EOF
        }
    }
    TokKind::BlockComment
}

/// `'` can open a char literal or a lifetime; disambiguate like rustc does:
/// `'<ident-start>` not followed by a closing `'` is a lifetime.
fn lex_quote(cur: &mut Cursor<'_>) -> TokKind {
    match (cur.peek2(), cur.peek3()) {
        (Some(c2), c3) if is_ident_start(c2) && c3 != Some('\'') => {
            cur.bump(); // '
            cur.eat_while(is_ident_continue);
            TokKind::Lifetime
        }
        _ => {
            lex_char_body(cur);
            TokKind::CharLit
        }
    }
}

/// Consume `'…'` starting at the opening quote (escapes honoured).
fn lex_char_body(cur: &mut Cursor<'_>) {
    cur.bump(); // opening '
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump(); // the escaped char
            }
            Some('\'') | None => break,
            Some(_) => {}
        }
    }
}

/// Consume `"…"` starting at the opening quote (escapes honoured).
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening "
    loop {
        match cur.bump() {
            Some('\\') => {
                cur.bump();
            }
            Some('"') | None => break,
            Some(_) => {}
        }
    }
}

/// Consume `#…#"…"#…#` starting at the first `#` or `"` (the `r`/`br`
/// prefix is already consumed).  Handles any number of `#`s, including zero.
fn lex_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek() == Some('#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some('"') {
        return; // malformed; keep what we consumed (round-trip still holds)
    }
    cur.bump(); // opening "
    'outer: loop {
        match cur.bump() {
            Some('"') => {
                // A closing quote counts only when followed by `hashes` #s.
                let mut seen = 0usize;
                while seen < hashes && cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break 'outer;
                }
            }
            None => break 'outer, // unterminated: runs to EOF
            Some(_) => {}
        }
    }
}

/// Consume a numeric literal: digits in any base, `_` separators, a
/// fractional part (only when `.` is followed by a digit, so ranges and
/// method calls on integers are untouched) and signed exponents.
fn lex_number(cur: &mut Cursor<'_>) {
    let mut prev = '\0';
    loop {
        match cur.peek() {
            Some(c) if is_ident_continue(c) => {
                prev = c;
                cur.bump();
            }
            Some('.') if cur.peek2().is_some_and(|c| c.is_ascii_digit()) => {
                prev = '.';
                cur.bump();
            }
            Some(c @ ('+' | '-'))
                if matches!(prev, 'e' | 'E') && cur.peek2().is_some_and(|c| c.is_ascii_digit()) =>
            {
                prev = c;
                cur.bump();
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token<'_>> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text).collect();
        assert_eq!(rebuilt, src, "lexer must be lossless");
        toks
    }

    fn kinds(src: &str) -> Vec<TokKind> {
        roundtrip(src).iter().map(|t| t.kind).collect()
    }

    #[test]
    fn nested_block_comments() {
        let toks = roundtrip("/* a /* b */ c */ x");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert_eq!(toks[0].text, "/* a /* b */ c */");
        assert_eq!(toks[2].kind, TokKind::Ident);
        assert_eq!(toks[2].text, "x");
    }

    #[test]
    fn unterminated_block_comment_runs_to_eof() {
        let toks = roundtrip("x /* open /* deeper */ never closed");
        assert_eq!(toks.last().map(|t| t.kind), Some(TokKind::BlockComment));
    }

    #[test]
    fn raw_string_containing_unwrap_is_one_token() {
        let src = r####"let s = r#"x.lock().unwrap() and panic!"#;"####;
        let toks = roundtrip(src);
        let raw: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::RawStringLit).collect();
        assert_eq!(raw.len(), 1);
        assert!(raw[0].text.contains("unwrap"));
        // No `unwrap` ident token may leak out of the literal.
        assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "unwrap"));
    }

    #[test]
    fn raw_string_with_internal_quote_hash() {
        // `"#` inside an `r##"…"##` literal must not close it.
        let src = r###"r##"contains "# inside"## tail"###;
        let toks = roundtrip(src);
        assert_eq!(toks[0].kind, TokKind::RawStringLit);
        assert!(toks[0].text.ends_with(r###""##"###));
        assert_eq!(toks.last().map(|t| t.text), Some("tail"));
    }

    #[test]
    fn string_containing_lock_call_is_opaque() {
        let toks = roundtrip(r#"let m = "self.state.lock().unwrap()";"#);
        assert!(!toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "lock"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::StringLit).count(), 1);
    }

    #[test]
    fn string_with_escaped_quote() {
        let toks = roundtrip(r#""a \" b" x"#);
        assert_eq!(toks[0].kind, TokKind::StringLit);
        assert_eq!(toks[0].text, r#""a \" b""#);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = roundtrip("&'a str; let c = 'x'; let z = '\\n'; let u = '_'; fn f<'_>()");
        let lifetimes: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).map(|t| t.text).collect();
        let chars: Vec<_> =
            toks.iter().filter(|t| t.kind == TokKind::CharLit).map(|t| t.text).collect();
        assert_eq!(lifetimes, vec!["'a", "'_"]);
        assert_eq!(chars, vec!["'x'", "'\\n'", "'_'"]);
    }

    #[test]
    fn byte_and_raw_byte_literals() {
        let toks = roundtrip(r##"b'q' b"bytes" br#"raw bytes"# r"raw" r#ident"##);
        let ks: Vec<_> =
            toks.iter().filter(|t| t.kind != TokKind::Whitespace).map(|t| t.kind).collect();
        assert_eq!(
            ks,
            vec![
                TokKind::ByteLit,
                TokKind::ByteStringLit,
                TokKind::RawByteStringLit,
                TokKind::RawStringLit,
                TokKind::RawIdent,
            ]
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges_or_methods() {
        // `0..n` keeps the range dots; `1.max(2)` keeps the method call.
        let texts: Vec<String> = roundtrip("0..n 1.max(2) 1.5e-3 0x1F_u32 1_000")
            .iter()
            .filter(|t| t.kind == TokKind::NumLit)
            .map(|t| t.text.to_string())
            .collect();
        assert_eq!(texts, vec!["0", "1", "2", "1.5e-3", "0x1F_u32", "1_000"]);
    }

    #[test]
    fn line_numbers_track_newlines_inside_tokens() {
        let src = "a\n/* two\nlines */\nb";
        let toks = roundtrip(src);
        let b = toks.iter().find(|t| t.text == "b").expect("token b");
        assert_eq!(b.line, 4);
    }

    #[test]
    fn line_comment_excludes_newline() {
        let toks = roundtrip("// note\nx");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert_eq!(toks[0].text, "// note");
        assert_eq!(toks[1].kind, TokKind::Whitespace);
    }

    #[test]
    fn unicode_survives() {
        let _ = kinds("// Σ ≈ π\nlet α = \"β\";");
    }
}
