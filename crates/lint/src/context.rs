//! Lightweight structural context over the token stream.
//!
//! A single forward pass tracks, for every token:
//!
//! * whether it sits inside **test code** — a `#[cfg(test)]` / `#[test]`
//!   item, or a file under `tests/`, `benches/` or `examples/`,
//! * the current **module path** within the file (`mod a { mod b { … } }`),
//! * the name of the enclosing **function**, if any.
//!
//! The tracker is heuristic by design (it does not parse Rust), but its
//! failure mode is conservative in the direction we care about: a scope is
//! only marked as test code when an explicit test attribute or test-like
//! file location says so, so real library code can never be silently
//! exempted by a tracking miss.

use crate::lexer::{TokKind, Token};

/// Per-token context, index-aligned with the lexed token stream.
#[derive(Clone, Debug)]
pub struct TokenContext {
    /// Token is inside `#[cfg(test)]` / `#[test]` code or a test-only file.
    pub test: bool,
    /// `mod` path within the file, outermost first.
    pub module_path: Vec<String>,
    /// Name of the innermost enclosing `fn`, if any.
    pub fn_name: Option<String>,
}

/// How a file's location classifies all of its contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// Ordinary library / binary source: all rules apply.
    Library,
    /// `tests/`, `benches/` or `examples/`: test context throughout.
    Test,
}

/// Classify a workspace-relative path (forward slashes).
pub fn classify_path(rel_path: &str) -> FileClass {
    let p = rel_path.replace('\\', "/");
    let in_dir = |d: &str| p.starts_with(&format!("{d}/")) || p.contains(&format!("/{d}/"));
    if in_dir("tests") || in_dir("benches") || in_dir("examples") {
        FileClass::Test
    } else {
        FileClass::Library
    }
}

#[derive(Clone, Debug)]
enum ScopeKind {
    Module(String),
    Fn(String),
    Other,
}

#[derive(Clone, Debug)]
struct Scope {
    kind: ScopeKind,
    test: bool,
}

/// Compute the per-token context for a lexed file.
pub fn contexts(tokens: &[Token<'_>], class: FileClass) -> Vec<TokenContext> {
    let file_test = class == FileClass::Test;
    let mut scopes: Vec<Scope> = Vec::new();
    let mut out = Vec::with_capacity(tokens.len());

    // Attribute / item bookkeeping between braces.
    let mut pending_test = false; // saw #[cfg(test)] / #[test] awaiting its item
    let mut pending_name: Option<ScopeKind> = None; // saw `mod x` / `fn x` awaiting `{`
    let mut i = 0usize;

    while i < tokens.len() {
        let cur_test = file_test || scopes.last().is_some_and(|s| s.test);
        out.push(TokenContext {
            test: cur_test,
            module_path: scopes
                .iter()
                .filter_map(|s| match &s.kind {
                    ScopeKind::Module(name) => Some(name.clone()),
                    _ => None,
                })
                .collect(),
            fn_name: scopes.iter().rev().find_map(|s| match &s.kind {
                ScopeKind::Fn(name) => Some(name.clone()),
                _ => None,
            }),
        });

        let tok = &tokens[i];
        match tok.kind {
            TokKind::Punct if tok.text == "#" => {
                // Attribute: scan `[ … ]`, flagging test markers.  The scan
                // emits contexts for the consumed tokens too.
                if let Some((end, is_test)) = scan_attribute(tokens, i) {
                    if is_test {
                        pending_test = true;
                    }
                    for _ in i + 1..=end {
                        out.push(TokenContext {
                            test: cur_test,
                            module_path: Vec::new(),
                            fn_name: None,
                        });
                    }
                    i = end + 1;
                    continue;
                }
            }
            TokKind::Ident if tok.text == "mod" => {
                if let Some(name) = next_ident(tokens, i + 1) {
                    pending_name = Some(ScopeKind::Module(name));
                }
            }
            TokKind::Ident if tok.text == "fn" => {
                if let Some(name) = next_ident(tokens, i + 1) {
                    pending_name = Some(ScopeKind::Fn(name));
                }
            }
            TokKind::Punct if tok.text == ";" => {
                // `mod name;`, `#[cfg(test)] use …;` and friends: the pending
                // attribute/name attached to a braceless item — drop it.
                pending_test = false;
                pending_name = None;
            }
            TokKind::Punct if tok.text == "{" => {
                let parent_test = scopes.last().is_some_and(|s| s.test);
                scopes.push(Scope {
                    kind: pending_name.take().unwrap_or(ScopeKind::Other),
                    test: parent_test || pending_test,
                });
                pending_test = false;
            }
            TokKind::Punct if tok.text == "}" => {
                scopes.pop();
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Scan an attribute starting at the `#` token; returns the index of the
/// closing `]` and whether the attribute marks test code.
fn scan_attribute(tokens: &[Token<'_>], hash_idx: usize) -> Option<(usize, bool)> {
    let mut i = hash_idx + 1;
    // Optional inner-attribute bang: `#![…]`.
    if tokens.get(i).is_some_and(|t| t.kind == TokKind::Punct && t.text == "!") {
        i += 1;
    }
    let open = tokens.get(i)?;
    if open.kind != TokKind::Punct || open.text != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut is_test = false;
    let mut saw_cfg = false;
    let mut saw_not = false;
    for (j, t) in tokens.iter().enumerate().skip(i) {
        match (t.kind, t.text) {
            (TokKind::Punct, "[") => depth += 1,
            (TokKind::Punct, "]") => {
                depth -= 1;
                if depth == 0 {
                    return Some((j, is_test));
                }
            }
            (TokKind::Ident, "cfg") => saw_cfg = true,
            (TokKind::Ident, "not") => saw_not = true,
            // `#[test]` directly, or `test` inside `#[cfg(…)]` — but not a
            // negated `#[cfg(not(test))]`.
            (TokKind::Ident, "test") if (saw_cfg && !saw_not) || j == i + 1 => is_test = true,
            _ => {}
        }
    }
    None // unterminated attribute: treat as plain tokens
}

/// First non-trivia identifier at or after `from`.
fn next_ident(tokens: &[Token<'_>], from: usize) -> Option<String> {
    tokens[from..]
        .iter()
        .find(|t| !t.kind.is_trivia())
        .filter(|t| t.kind == TokKind::Ident || t.kind == TokKind::RawIdent)
        .map(|t| t.text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx_at(src: &str, needle: &str) -> TokenContext {
        let toks = lex(src);
        let ctxs = contexts(&toks, FileClass::Library);
        let idx = toks
            .iter()
            .position(|t| t.text == needle && !t.kind.is_trivia())
            .expect("needle token present");
        ctxs[idx].clone()
    }

    #[test]
    fn cfg_test_module_is_test_context() {
        let src = "fn lib_code() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }";
        assert!(!ctx_at(src, "a").test);
        assert!(ctx_at(src, "b").test);
    }

    #[test]
    fn test_attribute_on_fn_is_test_context() {
        let src = "#[test]\nfn check() { c(); }\nfn real() { d(); }";
        assert!(ctx_at(src, "c").test);
        assert!(!ctx_at(src, "d").test);
    }

    #[test]
    fn cfg_test_on_use_does_not_leak_to_next_brace() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() { e(); }";
        assert!(!ctx_at(src, "e").test);
    }

    #[test]
    fn nested_modules_and_fn_names_tracked() {
        let src = "mod outer { mod inner { fn work() { f(); } } }";
        let ctx = ctx_at(src, "f");
        assert_eq!(ctx.module_path, vec!["outer", "inner"]);
        assert_eq!(ctx.fn_name.as_deref(), Some("work"));
    }

    #[test]
    fn test_file_class_marks_everything() {
        let toks = lex("fn anything() { g(); }");
        let ctxs = contexts(&toks, FileClass::Test);
        assert!(ctxs.iter().all(|c| c.test));
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify_path("crates/gnn/src/plan.rs"), FileClass::Library);
        assert_eq!(classify_path("crates/gnn/tests/parity.rs"), FileClass::Test);
        assert_eq!(classify_path("tests/determinism.rs"), FileClass::Test);
        assert_eq!(classify_path("examples/quickstart.rs"), FileClass::Test);
        assert_eq!(classify_path("crates/bench/src/bin/perf_suite.rs"), FileClass::Library);
    }

    #[test]
    fn attr_followed_by_derive_then_test_mod() {
        // Attributes that are not test markers must not poison the flag.
        let src = "#[derive(Debug)]\nstruct S;\n#[cfg(test)]\nmod t { fn h() { i(); } }";
        assert!(ctx_at(src, "i").test);
        let src2 = "#[derive(Debug)]\nstruct S { x: u32 }\nfn r() { j(); }";
        assert!(!ctx_at(src2, "j").test);
    }
}
