//! `detlint` CLI: lint the workspace (or given paths) against the
//! determinism & resilience contracts.
//!
//! ```text
//! detlint [--json] [--self-check] [--exclude-shims] [PATH …]
//! ```
//!
//! * no paths: discover the workspace root (walk up to the `Cargo.toml`
//!   containing `[workspace]`) and scan every `.rs` file outside the
//!   excluded directories (build output; the vendored shims ARE scanned —
//!   `--include-shims` is the default, `--exclude-shims` restores the
//!   pre-PR-10 scope),
//! * `--json`: machine-readable report on stdout,
//! * `--self-check`: additionally lint `crates/lint` itself and assert the
//!   workspace-wide `detlint::allow` count matches the committed
//!   `EXPECTED_WORKSPACE_ALLOWS` constant, so suppressions cannot
//!   accumulate silently.
//!
//! Exit codes: `0` clean, `1` live violations (or self-check mismatch),
//! `2` usage / IO error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lint::{count_allow_comments, lint_file, Config, Report, EXPECTED_WORKSPACE_ALLOWS};

fn main() -> ExitCode {
    let mut json = false;
    let mut self_check = false;
    let mut include_shims = true;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--self-check" => self_check = true,
            // Default-on: the pool shim is the most determinism-critical
            // code in the tree.  The explicit flag documents intent in CI
            // invocations; --exclude-shims restores the pre-PR-10 scope.
            "--include-shims" => include_shims = true,
            "--exclude-shims" => include_shims = false,
            "--help" | "-h" => {
                println!(
                    "usage: detlint [--json] [--self-check] [--include-shims|--exclude-shims] \
                     [PATH ...]"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("detlint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
            other => paths.push(PathBuf::from(other)),
        }
    }

    let mut cfg = Config::default();
    if !include_shims {
        cfg.exclude_shims();
    }
    let root = match workspace_root() {
        Some(r) => r,
        None => {
            eprintln!("detlint: could not locate the workspace root (no [workspace] Cargo.toml)");
            return ExitCode::from(2);
        }
    };
    if paths.is_empty() {
        paths.push(root.clone());
    }

    let mut files: Vec<PathBuf> = Vec::new();
    for p in &paths {
        if let Err(e) = collect_rs_files(p, &root, &cfg, &mut files) {
            eprintln!("detlint: {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    files.sort();
    files.dedup();

    let mut report = Report::default();
    let mut allow_total = 0usize;
    for f in &files {
        let src = match fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("detlint: {}: {e}", f.display());
                return ExitCode::from(2);
            }
        };
        let rel = rel_path(f, &root);
        allow_total += count_allow_comments(&src);
        report.findings.extend(lint_file(&rel, &src, &cfg));
        report.files_scanned += 1;
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));

    let mut self_check_failures: Vec<String> = Vec::new();
    if self_check {
        // 1. crates/lint must itself be clean (it is not in the default walk
        //    scope's guarded lists, but all always-on rules apply).
        let lint_live = report
            .findings
            .iter()
            .filter(|v| v.is_live() && v.file.starts_with("crates/lint/"))
            .count();
        if lint_live > 0 {
            self_check_failures
                .push(format!("crates/lint has {lint_live} live violation(s) of its own rules"));
        }
        // 2. The workspace-wide suppression count is pinned.
        if allow_total != EXPECTED_WORKSPACE_ALLOWS {
            self_check_failures.push(format!(
                "workspace has {allow_total} detlint::allow comment(s), expected \
                 {EXPECTED_WORKSPACE_ALLOWS}; review the new/removed suppressions and \
                 update EXPECTED_WORKSPACE_ALLOWS in crates/lint/src/config.rs"
            ));
        }
    }

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    for f in &self_check_failures {
        eprintln!("detlint: self-check: {f}");
    }
    if self_check && self_check_failures.is_empty() && !json {
        println!(
            "detlint: self-check OK ({allow_total} suppression(s), matching the committed count)"
        );
    }

    if report.passed() && self_check_failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Walk up from the current directory to the `Cargo.toml` declaring
/// `[workspace]`.
fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Recursively collect `.rs` files under `path`, skipping excluded
/// directories.  Directory entries are visited in sorted order so output is
/// deterministic.
fn collect_rs_files(
    path: &Path,
    root: &Path,
    cfg: &Config,
    out: &mut Vec<PathBuf>,
) -> std::io::Result<()> {
    let rel = rel_path(path, root);
    if cfg.is_excluded(&format!("{rel}/")) {
        return Ok(());
    }
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> =
        fs::read_dir(path)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for entry in entries {
        if entry.is_dir() {
            let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with('.') {
                continue;
            }
            collect_rs_files(&entry, root, cfg, out)?;
        } else if entry.extension().is_some_and(|e| e == "rs") {
            let rel = rel_path(&entry, root);
            if !cfg.is_excluded(&rel) {
                out.push(entry);
            }
        }
    }
    Ok(())
}

/// Workspace-relative, forward-slash path for reporting and scoping.
fn rel_path(p: &Path, root: &Path) -> String {
    let canon = p.canonicalize().unwrap_or_else(|_| p.to_path_buf());
    let rel = canon.strip_prefix(root).unwrap_or(&canon);
    rel.to_string_lossy().replace('\\', "/")
}
