//! Which rules apply where.
//!
//! Paths are workspace-relative fragments matched with `contains` after
//! normalising to forward slashes, so the lists stay robust against being
//! invoked from a sub-directory or another platform.

/// Scope configuration for the rule engine.
#[derive(Clone, Debug)]
pub struct Config {
    /// R2 `panic-in-guarded`: modules on the guarded hot path / resilience
    /// contract — the krylov apply path, the gnn plan/gemm engine, the
    /// ddm-gnn preconditioner and the Schwarz/coarse apply paths wrapped by
    /// `GuardedPreconditioner`.
    pub guarded_modules: Vec<String>,
    /// R3 `nondet-clock`: modules allowed to read wall clocks — the bench
    /// harness, the criterion shim (whose job is timing), the resilience
    /// time-budget layer and the solver-driver modules whose job is
    /// reporting setup/solve wall times.
    pub clock_allowed: Vec<String>,
    /// R4 `nondet-iteration` + R5 `float-reduce`: the deterministic solver
    /// pipeline — everything whose results feed the bit-reproducible
    /// residual-history contract.
    pub deterministic_modules: Vec<String>,
    /// Directory fragments excluded from the walk entirely (build output;
    /// the vendored shims are scanned by default since PR 10 — see
    /// [`Config::exclude_shims`]).
    pub excluded_dirs: Vec<String>,
}

/// Committed number of `detlint::allow` suppressions across the workspace.
///
/// `--self-check` re-counts and fails on mismatch, so a new suppression
/// cannot land without a reviewed bump of this constant.
///
/// History: 16 when the scan excluded `shims/`; 18 once the shims entered
/// the scan scope (two reviewed `mutex-poison` allows on the worker pool's
/// batch latch, where propagating a poison panic beats waiting forever on
/// corrupted completion accounting).
pub const EXPECTED_WORKSPACE_ALLOWS: usize = 18;

impl Default for Config {
    fn default() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect();
        Config {
            guarded_modules: s(&[
                "crates/krylov/src/preconditioner.rs",
                "crates/krylov/src/resilience.rs",
                "crates/krylov/src/cg.rs",
                "crates/krylov/src/pcg.rs",
                "crates/krylov/src/bicgstab.rs",
                "crates/krylov/src/gmres.rs",
                "crates/krylov/src/batch.rs",
                "crates/krylov/src/history.rs",
                "crates/gnn/src/plan.rs",
                "crates/gnn/src/gemm.rs",
                "crates/ddm-gnn/src/preconditioner.rs",
                "crates/ddm/src/asm.rs",
                "crates/ddm/src/coarse.rs",
                "crates/ddm/src/local.rs",
                "crates/ddm/src/multilevel.rs",
                // The sanitizer must never panic out of an instrumented lock
                // path: a detsan-only abort would make failures observable
                // only in sanitizer runs.
                "crates/sanitizer/src/",
            ]),
            clock_allowed: s(&[
                "crates/bench/",
                "crates/krylov/src/resilience.rs",
                "crates/ddm-gnn/src/solver.rs",
                // The criterion stand-in's whole job is measuring wall time.
                "shims/criterion/",
            ]),
            deterministic_modules: s(&[
                "crates/sparse/src/",
                "crates/krylov/src/",
                "crates/ddm/src/",
                "crates/ddm-gnn/src/",
                "crates/gnn/src/",
                "crates/partition/src/",
                "crates/meshgen/src/",
                "crates/fem/src/",
                // The pool shim is the most determinism-critical code in the
                // tree: every parallel reduction's chunk order lives here.
                "shims/rayon/src/",
            ]),
            excluded_dirs: s(&["target/", ".git/"]),
        }
    }
}

impl Config {
    fn matches(list: &[String], rel_path: &str) -> bool {
        let p = rel_path.replace('\\', "/");
        list.iter().any(|frag| p.contains(frag.as_str()) || p.starts_with(frag.as_str()))
    }

    /// Whether R2 applies to this file.
    pub fn is_guarded(&self, rel_path: &str) -> bool {
        Self::matches(&self.guarded_modules, rel_path)
    }

    /// Whether R3 exempts this file.
    pub fn clock_is_allowed(&self, rel_path: &str) -> bool {
        Self::matches(&self.clock_allowed, rel_path)
    }

    /// Whether R4/R5 apply to this file.
    pub fn is_deterministic(&self, rel_path: &str) -> bool {
        Self::matches(&self.deterministic_modules, rel_path)
    }

    /// Whether the walk should skip this path entirely.
    pub fn is_excluded(&self, rel_path: &str) -> bool {
        Self::matches(&self.excluded_dirs, rel_path)
    }

    /// Restore the pre-PR-10 scan scope: vendored shims excluded.  The CLI
    /// exposes this as `--exclude-shims` (`--include-shims` is the
    /// default).
    pub fn exclude_shims(&mut self) {
        self.excluded_dirs.push("shims/".to_string());
    }
}
