//! The rule engine: six determinism/resilience contract checks plus the
//! suppression (`detlint::allow`) machinery.
//!
//! | id                 | contract                                                        |
//! |--------------------|-----------------------------------------------------------------|
//! | `mutex-poison`     | `.lock()` in library code recovers from poisoning, never panics |
//! | `panic-in-guarded` | no panic sources in designated hot-path / resilience modules    |
//! | `nondet-clock`     | wall clocks only in timing / bench / budget modules             |
//! | `nondet-iteration` | no hash-order iteration in the deterministic solver pipeline    |
//! | `float-reduce`     | no ad-hoc float reductions inside `par_iter` closures           |
//! | `unsafe-justified` | every `unsafe` carries an anchored `// SAFETY:` argument        |
//!
//! Suppression is explicit and reasoned:
//!
//! ```text
//! // detlint::allow(nondet-clock): timing instrumentation only, results unaffected
//! ```
//!
//! placed on the offending line or the line directly above.  A missing or
//! empty reason, or an unknown rule id, is itself a violation
//! (`allow-syntax`) — as is a suppression that no longer suppresses
//! anything, so stale allows cannot accumulate.

use crate::config::Config;
use crate::context::{classify_path, contexts, TokenContext};
use crate::lexer::{lex, TokKind, Token};

/// Every valid rule id.
pub const RULE_IDS: [&str; 6] = [
    "mutex-poison",
    "panic-in-guarded",
    "nondet-clock",
    "nondet-iteration",
    "float-reduce",
    "unsafe-justified",
];

/// One finding (possibly suppressed).
#[derive(Clone, Debug)]
pub struct Violation {
    /// Rule id, or `allow-syntax` for suppression-comment problems.
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong and what to do instead.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
    /// `Some(reason)` when an inline `detlint::allow` suppresses the
    /// finding; `None` for a live violation.
    pub allow_reason: Option<String>,
}

impl Violation {
    /// Whether this finding still fails the build.
    pub fn is_live(&self) -> bool {
        self.allow_reason.is_none()
    }
}

/// A parsed `detlint::allow(rule, …): reason` comment.
#[derive(Clone, Debug)]
struct Allow {
    line: u32,
    rules: Vec<String>,
    reason: String,
    used: std::cell::Cell<bool>,
}

/// Lint one file; returns all findings (live and suppressed).
pub fn lint_file(rel_path: &str, src: &str, cfg: &Config) -> Vec<Violation> {
    let tokens = lex(src);
    let ctxs = contexts(&tokens, classify_path(rel_path));
    let lines: Vec<&str> = src.lines().collect();
    let snippet = |line: u32| -> String {
        lines.get(line as usize - 1).map(|l| l.trim().to_string()).unwrap_or_default()
    };

    let (allows, mut out) = parse_allows(rel_path, &tokens, &snippet);

    let mut findings: Vec<(String, u32, String)> = Vec::new();
    rule_mutex_poison(&tokens, &ctxs, &mut findings);
    rule_unsafe_justified(&tokens, &ctxs, &mut findings);
    if cfg.is_guarded(rel_path) {
        rule_panic_in_guarded(&tokens, &ctxs, &mut findings);
    }
    if !cfg.clock_is_allowed(rel_path) {
        rule_nondet_clock(&tokens, &ctxs, &mut findings);
    }
    if cfg.is_deterministic(rel_path) {
        rule_nondet_iteration(&tokens, &ctxs, &mut findings);
        rule_float_reduce(&tokens, &ctxs, &mut findings);
    }

    for (rule, line, message) in findings {
        let allow_reason = allows
            .iter()
            .find(|a| (a.line == line || a.line + 1 == line) && a.rules.iter().any(|r| r == &rule))
            .map(|a| {
                a.used.set(true);
                a.reason.clone()
            });
        out.push(Violation {
            rule,
            file: rel_path.to_string(),
            line,
            message,
            snippet: snippet(line),
            allow_reason,
        });
    }

    // A suppression that suppresses nothing is stale — flag it so allows
    // cannot outlive the code they excused.
    for a in &allows {
        if !a.used.get() {
            out.push(Violation {
                rule: "allow-syntax".to_string(),
                file: rel_path.to_string(),
                line: a.line,
                message: format!(
                    "unused suppression for ({}): no matching finding on this or the next line",
                    a.rules.join(", ")
                ),
                snippet: snippet(a.line),
                allow_reason: None,
            });
        }
    }

    out.sort_by_key(|v| (v.line, v.rule.clone()));
    out
}

/// Count every `detlint::allow` comment in a source file (used by
/// `--self-check` to pin the workspace-wide suppression budget).
pub fn count_allow_comments(src: &str) -> usize {
    lex(src).iter().filter(|t| allow_content(t).is_some()).count()
}

/// If the comment token is an *anchored* suppression — its content starts
/// with `detlint::allow(` right after the comment opener — return the text
/// from `detlint::allow(` onward.  Prose that merely mentions the syntax
/// mid-sentence (doc comments, examples) does not anchor and is ignored.
fn allow_content<'a>(tok: &Token<'a>) -> Option<&'a str> {
    if !tok.kind.is_comment() {
        return None;
    }
    let body =
        tok.text.strip_prefix("//").or_else(|| tok.text.strip_prefix("/*")).unwrap_or(tok.text);
    // Doc/inner markers: `///`, `//!`, `/**`, `/*!`.
    let body = body.strip_prefix(['/', '!']).unwrap_or(body);
    let body = body.trim_start();
    body.starts_with("detlint::allow(").then_some(body)
}

fn parse_allows(
    rel_path: &str,
    tokens: &[Token<'_>],
    snippet: &dyn Fn(u32) -> String,
) -> (Vec<Allow>, Vec<Violation>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    let mut syntax_error = |line: u32, message: String| {
        errors.push(Violation {
            rule: "allow-syntax".to_string(),
            file: rel_path.to_string(),
            line,
            message,
            snippet: snippet(line),
            allow_reason: None,
        });
    };
    for t in tokens.iter() {
        let Some(content) = allow_content(t) else { continue };
        let rest = &content["detlint::allow(".len()..];
        let Some(close) = rest.find(')') else {
            syntax_error(t.line, "malformed detlint::allow: missing `)`".to_string());
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rules.is_empty() {
            syntax_error(t.line, "detlint::allow with an empty rule list".to_string());
            continue;
        }
        if let Some(bad) = rules.iter().find(|r| !RULE_IDS.contains(&r.as_str())) {
            syntax_error(
                t.line,
                format!(
                    "detlint::allow names unknown rule `{bad}` (known: {})",
                    RULE_IDS.join(", ")
                ),
            );
            continue;
        }
        let after = &rest[close + 1..];
        let Some(colon) = after.trim_start().strip_prefix(':') else {
            syntax_error(
                t.line,
                "detlint::allow requires a reason: `detlint::allow(rule): <why>`".to_string(),
            );
            continue;
        };
        let reason = colon.trim().trim_end_matches("*/").trim().to_string();
        if reason.is_empty() {
            syntax_error(t.line, "detlint::allow reason must not be empty".to_string());
            continue;
        }
        allows.push(Allow { line: t.line, rules, reason, used: std::cell::Cell::new(false) });
    }
    (allows, errors)
}

/// Next non-trivia token index strictly after `i`.
fn next_code(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    tokens.iter().enumerate().skip(i + 1).find(|(_, t)| !t.kind.is_trivia()).map(|(j, _)| j)
}

/// Previous non-trivia token index strictly before `i`.
fn prev_code(tokens: &[Token<'_>], i: usize) -> Option<usize> {
    tokens[..i].iter().enumerate().rev().find(|(_, t)| !t.kind.is_trivia()).map(|(j, _)| j)
}

fn is_punct(t: &Token<'_>, c: &str) -> bool {
    t.kind == TokKind::Punct && t.text == c
}

fn is_ident(t: &Token<'_>, name: &str) -> bool {
    t.kind == TokKind::Ident && t.text == name
}

/// Match a sequence of punctuation/ident texts starting strictly after `i`,
/// skipping trivia; returns the index of the last matched token.
fn match_seq(tokens: &[Token<'_>], mut i: usize, seq: &[&str]) -> Option<usize> {
    for want in seq {
        i = next_code(tokens, i)?;
        let t = &tokens[i];
        let ok = match t.kind {
            TokKind::Punct | TokKind::Ident => t.text == *want,
            _ => false,
        };
        if !ok {
            return None;
        }
    }
    Some(i)
}

/// R1: `.lock()` immediately consumed by `.unwrap()` / `.expect(…)`.
fn rule_mutex_poison(
    tokens: &[Token<'_>],
    ctxs: &[TokenContext],
    findings: &mut Vec<(String, u32, String)>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "lock") || ctxs[i].test {
            continue;
        }
        let Some(p) = prev_code(tokens, i) else { continue };
        if !is_punct(&tokens[p], ".") {
            continue;
        }
        let Some(close) = match_seq(tokens, i, &["(", ")"]) else { continue };
        let Some(dot) = next_code(tokens, close) else { continue };
        if !is_punct(&tokens[dot], ".") {
            continue;
        }
        let Some(m) = next_code(tokens, dot) else { continue };
        if is_ident(&tokens[m], "unwrap") || is_ident(&tokens[m], "expect") {
            findings.push((
                "mutex-poison".to_string(),
                t.line,
                format!(
                    "`.lock().{}(…)` panics on a poisoned mutex; recover with \
                     `.lock().unwrap_or_else(PoisonError::into_inner)` (every reachable \
                     scratch state is valid)",
                    tokens[m].text
                ),
            ));
        }
    }
}

/// R6: every `unsafe` block/fn/impl requires an anchored `// SAFETY:`
/// comment — on the statement's own lines, or in the contiguous comment
/// block directly above it.  A soundness argument that lives in module docs
/// (or nowhere) drifts away from the code it excuses; anchoring it to the
/// site keeps the argument reviewable next to every edit of the `unsafe`
/// code itself.
fn rule_unsafe_justified(
    tokens: &[Token<'_>],
    ctxs: &[TokenContext],
    findings: &mut Vec<(String, u32, String)>,
) {
    use std::collections::BTreeSet;
    // Line maps: which lines hold a `SAFETY:` comment, and which hold code.
    // Tokens can span lines (block comments, multi-line strings), so count
    // every line a token touches.
    let mut safety_lines: BTreeSet<u32> = BTreeSet::new();
    let mut code_lines: BTreeSet<u32> = BTreeSet::new();
    for t in tokens {
        let span = t.text.matches('\n').count() as u32;
        if t.kind.is_comment() && t.text.contains("SAFETY:") {
            safety_lines.extend(t.line..=t.line + span);
        }
        if !t.kind.is_trivia() {
            code_lines.extend(t.line..=t.line + span);
        }
    }
    for (i, t) in tokens.iter().enumerate() {
        if !is_ident(t, "unsafe") || ctxs[i].test {
            continue;
        }
        // First line of the statement/item the `unsafe` belongs to: walk
        // code tokens backward to the previous statement boundary.
        let mut start = t.line;
        let mut j = i;
        while let Some(p) = prev_code(tokens, j) {
            if is_punct(&tokens[p], ";") || is_punct(&tokens[p], "{") || is_punct(&tokens[p], "}") {
                break;
            }
            start = start.min(tokens[p].line);
            j = p;
        }
        let on_statement = (start..=t.line).any(|l| safety_lines.contains(&l));
        let above = || {
            // Scan the contiguous run of non-code lines directly above the
            // statement (comments and blanks) for a SAFETY line.
            let mut l = start;
            while l > 1 && !code_lines.contains(&(l - 1)) {
                l -= 1;
                if safety_lines.contains(&l) {
                    return true;
                }
            }
            false
        };
        if !on_statement && !above() {
            findings.push((
                "unsafe-justified".to_string(),
                t.line,
                "`unsafe` without an anchored `// SAFETY:` comment; state the soundness \
                 argument at the site (on the statement or directly above it)"
                    .to_string(),
            ));
        }
    }
}

/// R2: panic sources in guarded hot-path modules.
fn rule_panic_in_guarded(
    tokens: &[Token<'_>],
    ctxs: &[TokenContext],
    findings: &mut Vec<(String, u32, String)>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if ctxs[i].test || t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "unwrap" | "expect" => {
                let preceded_by_dot =
                    prev_code(tokens, i).is_some_and(|p| is_punct(&tokens[p], "."));
                let followed_by_call =
                    next_code(tokens, i).is_some_and(|n| is_punct(&tokens[n], "("));
                if !(preceded_by_dot && followed_by_call) {
                    continue;
                }
                // `.lock().unwrap()` is already R1's finding; don't duplicate.
                if is_lock_chain(tokens, i) {
                    continue;
                }
                let fn_note = ctxs[i]
                    .fn_name
                    .as_deref()
                    .map(|f| format!(" (in fn `{f}`)"))
                    .unwrap_or_default();
                findings.push((
                    "panic-in-guarded".to_string(),
                    t.line,
                    format!(
                        "`.{}(…)` in a guarded hot-path module{fn_note}: propagate \
                         `sparse::Result`, record a FaultLog fallback, or justify the \
                         invariant with detlint::allow",
                        t.text
                    ),
                ));
            }
            "panic" | "todo" | "unimplemented"
                if next_code(tokens, i).is_some_and(|n| is_punct(&tokens[n], "!")) =>
            {
                findings.push((
                    "panic-in-guarded".to_string(),
                    t.line,
                    format!("`{}!` in a guarded hot-path module", t.text),
                ));
            }
            _ => {}
        }
    }
}

/// Whether the `unwrap`/`expect` ident at `i` directly consumes `.lock()`.
fn is_lock_chain(tokens: &[Token<'_>], i: usize) -> bool {
    // Walk back: `.` `)` `(` `lock` `.`
    let steps = ["(", ")"]; // reversed: expect `)` then `(`
    let Some(dot) = prev_code(tokens, i) else { return false };
    if !is_punct(&tokens[dot], ".") {
        return false;
    }
    let Some(rp) = prev_code(tokens, dot) else { return false };
    if !is_punct(&tokens[rp], steps[1]) {
        return false;
    }
    let Some(lp) = prev_code(tokens, rp) else { return false };
    if !is_punct(&tokens[lp], steps[0]) {
        return false;
    }
    prev_code(tokens, lp).is_some_and(|l| is_ident(&tokens[l], "lock"))
}

/// R3: `Instant::now` / `SystemTime::now` outside timing modules.
fn rule_nondet_clock(
    tokens: &[Token<'_>],
    ctxs: &[TokenContext],
    findings: &mut Vec<(String, u32, String)>,
) {
    for (i, t) in tokens.iter().enumerate() {
        if ctxs[i].test {
            continue;
        }
        if !(is_ident(t, "Instant") || is_ident(t, "SystemTime")) {
            continue;
        }
        if match_seq(tokens, i, &[":", ":", "now"]).is_some() {
            findings.push((
                "nondet-clock".to_string(),
                t.line,
                format!(
                    "`{}::now()` outside the timing/bench/resilience-budget modules: wall \
                     clocks must not influence deterministic solver paths",
                    t.text
                ),
            ));
        }
    }
}

/// Iteration methods whose order follows the hasher, not the data.
const HASH_ITER_METHODS: [&str; 8] =
    ["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "par_iter"];

/// R4: iteration over `HashMap` / `HashSet` bindings in deterministic
/// modules.  Bindings are tracked lexically per file: any `let` statement
/// (or typed pattern) that mentions `HashMap`/`HashSet` taints the bound
/// name; iterating a tainted name — method call or `for … in` — is flagged.
fn rule_nondet_iteration(
    tokens: &[Token<'_>],
    ctxs: &[TokenContext],
    findings: &mut Vec<(String, u32, String)>,
) {
    // Pass 1: collect tainted binding names.
    let mut tainted: Vec<String> = Vec::new();
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].kind.is_trivia()).collect();
    for (ci, &i) in code.iter().enumerate() {
        if !(is_ident(&tokens[i], "HashMap") || is_ident(&tokens[i], "HashSet")) {
            continue;
        }
        // Walk back through the statement for `let [mut] <name>` or
        // `<name> :` (typed binding / parameter).
        let mut j = ci;
        while j > 0 {
            j -= 1;
            let t = &tokens[code[j]];
            if is_punct(t, ";") || is_punct(t, "{") || is_punct(t, "}") {
                break;
            }
            if is_ident(t, "let") {
                // name = first ident after `let` (skipping `mut`).
                for &k in &code[j + 1..] {
                    let tk = &tokens[k];
                    if is_ident(tk, "mut") {
                        continue;
                    }
                    if tk.kind == TokKind::Ident && !tainted.iter().any(|n| n == tk.text) {
                        tainted.push(tk.text.to_string());
                    }
                    break;
                }
                break;
            }
        }
    }
    if tainted.is_empty() {
        return;
    }

    // Pass 2: flag iteration over tainted names.
    for (ci, &i) in code.iter().enumerate() {
        if ctxs[i].test || tokens[i].kind != TokKind::Ident {
            continue;
        }
        let name = tokens[i].text;
        if !tainted.iter().any(|t| t == name) {
            continue;
        }
        // `<name>.iter()`-style hash-ordered method call.
        if ci + 3 < code.len()
            && is_punct(&tokens[code[ci + 1]], ".")
            && tokens[code[ci + 2]].kind == TokKind::Ident
            && HASH_ITER_METHODS.contains(&tokens[code[ci + 2]].text)
            && is_punct(&tokens[code[ci + 3]], "(")
        {
            findings.push((
                "nondet-iteration".to_string(),
                tokens[i].line,
                format!(
                    "`{name}.{}()` iterates a hash collection in a deterministic module: \
                     iteration order follows the hasher seed — use BTreeMap/BTreeSet or \
                     sort the keys first",
                    tokens[code[ci + 2]].text
                ),
            ));
        }
        // `for … in … <name> … {` — hash-ordered loop.
        let mut j = ci;
        let mut saw_in = false;
        while j > 0 {
            j -= 1;
            let t = &tokens[code[j]];
            if is_punct(t, "{") || is_punct(t, "}") || is_punct(t, ";") {
                break;
            }
            if is_ident(t, "in") {
                saw_in = true;
            } else if is_ident(t, "for") && saw_in {
                findings.push((
                    "nondet-iteration".to_string(),
                    tokens[i].line,
                    format!(
                        "`for … in` over hash collection `{name}` in a deterministic \
                         module: iteration order follows the hasher seed — use \
                         BTreeMap/BTreeSet or sort the keys first",
                    ),
                ));
                break;
            }
        }
    }
}

/// Parallel-iterator entry points that start a chain.
const PAR_ENTRY: [&str; 6] =
    ["par_iter", "par_iter_mut", "into_par_iter", "par_bridge", "par_chunks", "par_chunks_mut"];

/// R5: `.sum::<f64>()` / `.fold(` inside a closure argument of a `par_iter`
/// chain.  The chain-level `sum`/`reduce` go through the fixed-chunk
/// deterministic reduction layer; ad-hoc reductions inside the closures do
/// not, so they must be hoisted or justified.
fn rule_float_reduce(
    tokens: &[Token<'_>],
    ctxs: &[TokenContext],
    findings: &mut Vec<(String, u32, String)>,
) {
    let code: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].kind.is_trivia()).collect();
    let mut ci = 0usize;
    while ci < code.len() {
        let i = code[ci];
        if ctxs[i].test || tokens[i].kind != TokKind::Ident || !PAR_ENTRY.contains(&tokens[i].text)
        {
            ci += 1;
            continue;
        }
        // Scan the chain: relative paren depth, bounded lookahead.
        let mut depth = 0i32;
        let mut cj = ci + 1;
        let limit = (ci + 4000).min(code.len());
        while cj < limit {
            let j = code[cj];
            let t = &tokens[j];
            if is_punct(t, "(") {
                depth += 1;
            } else if is_punct(t, ")") {
                depth -= 1;
                if depth < 0 {
                    break; // left the enclosing expression
                }
            } else if depth == 0 && (is_punct(t, ";") || is_punct(t, ",")) {
                break; // chain statement ended
            } else if depth >= 1 && t.kind == TokKind::Ident {
                let after_dot = cj > 0 && is_punct(&tokens[code[cj - 1]], ".");
                if after_dot && t.text == "fold" {
                    findings.push((
                        "float-reduce".to_string(),
                        t.line,
                        "`.fold(…)` inside a par_iter closure bypasses the fixed-chunk \
                         deterministic reduction layer"
                            .to_string(),
                    ));
                } else if after_dot
                    && t.text == "sum"
                    && match_seq(tokens, j, &[":", ":", "<", "f64"]).is_some()
                {
                    findings.push((
                        "float-reduce".to_string(),
                        t.line,
                        "`.sum::<f64>()` inside a par_iter closure bypasses the fixed-chunk \
                         deterministic reduction layer"
                            .to_string(),
                    ));
                }
            }
            cj += 1;
        }
        ci += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_at(path: &str, src: &str) -> Vec<Violation> {
        lint_file(path, src, &Config::default())
    }

    fn live_rules(vs: &[Violation]) -> Vec<&str> {
        vs.iter().filter(|v| v.is_live()).map(|v| v.rule.as_str()).collect()
    }

    const GUARDED: &str = "crates/gnn/src/gemm.rs";
    const PLAIN: &str = "crates/fem/src/assembly.rs";

    #[test]
    fn bare_lock_unwrap_is_flagged_everywhere() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }";
        assert_eq!(live_rules(&lint_at(PLAIN, src)), vec!["mutex-poison"]);
        let src2 = "fn f(m: &Mutex<u32>) { let g = m.lock().expect(\"locked\"); }";
        assert_eq!(live_rules(&lint_at(PLAIN, src2)), vec!["mutex-poison"]);
    }

    #[test]
    fn recovering_lock_passes() {
        let src =
            "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap_or_else(PoisonError::into_inner); }";
        assert!(lint_at(PLAIN, src).is_empty());
    }

    #[test]
    fn lock_unwrap_in_test_module_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t(m: &Mutex<u32>) { m.lock().unwrap(); } }";
        assert!(lint_at(PLAIN, src).is_empty());
        // Same code in a tests/ file.
        let src2 = "fn t(m: &Mutex<u32>) { m.lock().unwrap(); }";
        assert!(lint_at("crates/gnn/tests/parity.rs", src2).is_empty());
    }

    #[test]
    fn lock_unwrap_inside_string_or_comment_is_ignored() {
        let src = "// example: m.lock().unwrap()\nfn f() { let s = \"m.lock().unwrap()\"; }";
        assert!(lint_at(PLAIN, src).is_empty());
        let raw = r####"fn f() { let s = r#"m.lock().unwrap() panic!"#; }"####;
        assert!(lint_at(GUARDED, raw).is_empty());
    }

    #[test]
    fn panic_sources_flagged_only_in_guarded_modules() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(live_rules(&lint_at(GUARDED, src)), vec!["panic-in-guarded"]);
        assert!(lint_at(PLAIN, src).is_empty());
        let mac = "fn f() { panic!(\"boom\"); }";
        assert_eq!(live_rules(&lint_at(GUARDED, mac)), vec!["panic-in-guarded"]);
        let todo = "fn f() { todo!() }";
        assert_eq!(live_rules(&lint_at(GUARDED, todo)), vec!["panic-in-guarded"]);
    }

    #[test]
    fn unwrap_or_else_and_unwrap_or_default_pass_guarded() {
        let src =
            "fn f(x: Option<u32>) -> u32 { x.unwrap_or_else(|| 0).max(x.unwrap_or_default()) }";
        assert!(lint_at(GUARDED, src).is_empty());
    }

    #[test]
    fn lock_unwrap_in_guarded_module_reports_only_mutex_poison() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); }";
        assert_eq!(live_rules(&lint_at(GUARDED, src)), vec!["mutex-poison"]);
    }

    #[test]
    fn clock_flagged_outside_timing_modules() {
        let src = "fn f() { let t = Instant::now(); }";
        assert_eq!(live_rules(&lint_at(PLAIN, src)), vec!["nondet-clock"]);
        let sys = "fn f() { let t = SystemTime::now(); }";
        assert_eq!(live_rules(&lint_at(PLAIN, sys)), vec!["nondet-clock"]);
        // Allowed in the bench harness and the resilience budget module.
        assert!(lint_at("crates/bench/src/bin/perf_suite.rs", src).is_empty());
        assert!(lint_at("crates/krylov/src/resilience.rs", src).is_empty());
        // And in tests anywhere.
        let t = "#[cfg(test)]\nmod tests { fn f() { let t = Instant::now(); } }";
        assert!(lint_at(PLAIN, t).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_in_deterministic_modules() {
        let src = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); \
                   for (k, v) in &m { use_it(k, v); } }";
        assert_eq!(live_rules(&lint_at(PLAIN, src)), vec!["nondet-iteration"]);
        let src2 = "fn f() { let s = HashSet::new(); let v: Vec<_> = s.iter().collect(); }";
        assert_eq!(live_rules(&lint_at(PLAIN, src2)), vec!["nondet-iteration"]);
        // Lookup-only use passes.
        let ok = "fn f() { let mut m: HashMap<u32, u32> = HashMap::new(); \
                  m.insert(1, 2); let x = m.get(&1); }";
        assert!(lint_at(PLAIN, ok).is_empty());
        // BTreeMap iteration passes.
        let bt = "fn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); \
                  for (k, v) in &m { use_it(k, v); } }";
        assert!(lint_at(PLAIN, bt).is_empty());
        // Outside the deterministic pipeline nothing fires.
        assert!(lint_at("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn float_reduce_flagged_inside_par_closures_only() {
        let bad = "fn f(xs: &[Vec<f64>], acc: &Mutex<f64>) { \
                   xs.par_iter().for_each(|row| { \
                   let s = row.iter().map(|v| v * v).sum::<f64>(); sink(s); }); }";
        assert_eq!(live_rules(&lint_at(PLAIN, bad)), vec!["float-reduce"]);
        let bad_fold = "fn f(xs: &[f64]) { xs.par_iter().for_each(|v| { \
                        let m = ws.iter().fold(0.0, f64::max); sink(m); }); }";
        assert_eq!(live_rules(&lint_at(PLAIN, bad_fold)), vec!["float-reduce"]);
        // The chain-level sum goes through the deterministic reduction layer.
        let ok = "fn f(xs: &[f64]) -> f64 { xs.par_iter().map(|v| v * v).sum() }";
        assert!(lint_at(PLAIN, ok).is_empty());
        // Sequential folds are fine.
        let seq = "fn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, f64::max) }";
        assert!(lint_at(PLAIN, seq).is_empty());
    }

    #[test]
    fn allow_with_reason_suppresses_and_is_reported_as_allowed() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   // detlint::allow(mutex-poison): test harness, poisoning impossible\n\
                   let g = m.lock().unwrap();\n}";
        let vs = lint_at(PLAIN, src);
        assert_eq!(vs.len(), 1);
        assert!(!vs[0].is_live());
        assert_eq!(vs[0].allow_reason.as_deref(), Some("test harness, poisoning impossible"));
    }

    #[test]
    fn allow_on_same_line_works() {
        let src = "fn f(m: &Mutex<u32>) { let g = m.lock().unwrap(); \
                   // detlint::allow(mutex-poison): same line justification\n}";
        let vs = lint_at(PLAIN, src);
        assert_eq!(vs.len(), 1);
        assert!(!vs[0].is_live());
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   // detlint::allow(mutex-poison)\n\
                   let g = m.lock().unwrap();\n}";
        let vs = lint_at(PLAIN, src);
        let rules = live_rules(&vs);
        assert!(rules.contains(&"allow-syntax"));
        assert!(rules.contains(&"mutex-poison"), "missing reason must not suppress");
    }

    #[test]
    fn allow_with_unknown_rule_is_a_violation() {
        let src = "fn f() {\n// detlint::allow(no-such-rule): whatever\nwork();\n}";
        let vs = lint_at(PLAIN, src);
        assert_eq!(live_rules(&vs), vec!["allow-syntax"]);
        assert!(vs[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let src = "fn f() {\n// detlint::allow(mutex-poison): nothing here anymore\nwork();\n}";
        let vs = lint_at(PLAIN, src);
        assert_eq!(live_rules(&vs), vec!["allow-syntax"]);
        assert!(vs[0].message.contains("unused suppression"));
    }

    #[test]
    fn allow_only_covers_named_rule() {
        let src = "fn f(m: &Mutex<u32>) {\n\
                   // detlint::allow(nondet-clock): wrong rule named\n\
                   let g = m.lock().unwrap();\n}";
        let vs = lint_at(PLAIN, src);
        let rules = live_rules(&vs);
        // The mutex-poison finding stays live and the clock allow is unused.
        assert!(rules.contains(&"mutex-poison"));
        assert!(rules.contains(&"allow-syntax"));
    }

    #[test]
    fn unjustified_unsafe_is_flagged() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } }";
        assert_eq!(live_rules(&lint_at(PLAIN, src)), vec!["unsafe-justified"]);
        // Unsafe impls need the argument too.
        let imp = "unsafe impl Send for Foo {}";
        assert_eq!(live_rules(&lint_at(PLAIN, imp)), vec!["unsafe-justified"]);
    }

    #[test]
    fn safety_comment_above_the_statement_justifies_unsafe() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   // SAFETY: caller guarantees p is valid for reads.\n\
                   let v =\n\
                   unsafe { *p };\n\
                   v }";
        assert!(lint_at(PLAIN, src).is_empty());
        // A multi-line statement with the SAFETY block several comment lines
        // above its first line (the pool.rs transmute shape).
        let pool_shape = "fn f(p: *const u8) -> u8 {\n\
                          // SAFETY: the borrow outlives every use because the\n\
                          // latch blocks until all jobs finish.\n\
                          let value: u8 =\n\
                          unsafe { *p };\n\
                          value }";
        assert!(lint_at(PLAIN, pool_shape).is_empty());
    }

    #[test]
    fn safety_comment_on_the_same_line_justifies_unsafe() {
        let src = "fn f(p: *const u8) -> u8 { unsafe { *p } /* SAFETY: p valid */ }";
        assert!(lint_at(PLAIN, src).is_empty());
    }

    #[test]
    fn unrelated_comment_does_not_justify_unsafe() {
        let src = "fn f(p: *const u8) -> u8 {\n\
                   // definitely fine, trust me\n\
                   unsafe { *p }\n\
                   }";
        assert_eq!(live_rules(&lint_at(PLAIN, src)), vec!["unsafe-justified"]);
        // A SAFETY comment separated from the statement by code does not
        // anchor.
        let stale = "fn f(p: *const u8) -> u8 {\n\
                     // SAFETY: for the other statement.\n\
                     let _x = 1;\n\
                     unsafe { *p }\n\
                     }";
        assert_eq!(live_rules(&lint_at(PLAIN, stale)), vec!["unsafe-justified"]);
    }

    #[test]
    fn unsafe_in_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests { fn t(p: *const u8) -> u8 { unsafe { *p } } }";
        assert!(lint_at(PLAIN, src).is_empty());
    }

    #[test]
    fn unsafe_can_be_allowed_with_reason() {
        let src = "// detlint::allow(unsafe-justified): audited in PR review\n\
                   fn f(p: *const u8) -> u8 { unsafe { *p } }";
        let vs = lint_at(PLAIN, src);
        assert!(vs.iter().all(|v| !v.is_live()), "allow must suppress: {vs:?}");
    }

    #[test]
    fn count_allow_comments_counts_only_comments() {
        let src = "// detlint::allow(mutex-poison): a\n\
                   let s = \"detlint::allow(mutex-poison): not me\";\n\
                   /* detlint::allow(nondet-clock): b */";
        assert_eq!(count_allow_comments(src), 2);
    }
}
