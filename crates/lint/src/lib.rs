//! `detlint` — a self-contained static analyzer enforcing this workspace's
//! determinism and resilience source contracts.
//!
//! The solver's headline guarantees — bit-identical f64 residual histories
//! across thread counts, and panic containment in the guarded
//! preconditioner paths — are *source-level* contracts: poison-recovering
//! mutexes, no wall clocks in solver math, no hash-order iteration, no
//! ad-hoc float reductions inside parallel closures.  This crate machine-
//! checks them with a hand-rolled lossless lexer (no external parser
//! dependencies) and a small token-pattern rule engine.
//!
//! See the README "Static analysis" section for the rule catalogue and the
//! `detlint::allow` suppression syntax.

pub mod config;
pub mod context;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{Config, EXPECTED_WORKSPACE_ALLOWS};
pub use report::Report;
pub use rules::{count_allow_comments, lint_file, Violation, RULE_IDS};
