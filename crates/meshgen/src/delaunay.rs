//! Bowyer–Watson Delaunay triangulation with walking point location.
//!
//! The generator inserts points in Morton (Z-curve) order and locates each new
//! point by walking from the most recently created triangle, which keeps the
//! expected cost per insertion close to constant.  The triangulation begins
//! from a large super-triangle whose vertices are removed at the end.

use crate::geometry::{in_circumcircle, orient2d, Point2};

/// A triangle of the triangulation: vertex indices plus neighbour triangle
/// indices (`usize::MAX` marks "no neighbour").  Neighbour `k` is opposite to
/// vertex `k`.
#[derive(Debug, Clone, Copy)]
struct Triangle {
    v: [usize; 3],
    n: [usize; 3],
    alive: bool,
}

const NONE: usize = usize::MAX;

/// Delaunay triangulation of a point set.
///
/// Returns triangles as triples of indices into `points`, oriented
/// counter-clockwise.  Duplicate points are tolerated (the duplicate is simply
/// skipped), collinear degenerate inputs with fewer than 3 distinct points
/// return an empty triangulation.
pub fn triangulate(points: &[Point2]) -> Vec<[usize; 3]> {
    let n = points.len();
    if n < 3 {
        return Vec::new();
    }

    // Bounding box and super-triangle.
    let (mut min_x, mut min_y, mut max_x, mut max_y) =
        (f64::INFINITY, f64::INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
    for p in points {
        min_x = min_x.min(p.x);
        min_y = min_y.min(p.y);
        max_x = max_x.max(p.x);
        max_y = max_y.max(p.y);
    }
    let dx = (max_x - min_x).max(1e-9);
    let dy = (max_y - min_y).max(1e-9);
    let dmax = dx.max(dy);
    let cx = 0.5 * (min_x + max_x);
    let cy = 0.5 * (min_y + max_y);

    // The working vertex array: original points followed by the 3 super vertices.
    let mut verts: Vec<Point2> = points.to_vec();
    let s0 = verts.len();
    verts.push(Point2::new(cx - 20.0 * dmax, cy - 10.0 * dmax));
    verts.push(Point2::new(cx + 20.0 * dmax, cy - 10.0 * dmax));
    verts.push(Point2::new(cx, cy + 20.0 * dmax));

    let mut tris: Vec<Triangle> = Vec::with_capacity(2 * n);
    tris.push(Triangle { v: [s0, s0 + 1, s0 + 2], n: [NONE, NONE, NONE], alive: true });

    // Insert points in Morton order for locality.
    let order = morton_order(points, min_x, min_y, dmax);

    let mut last_alive = 0usize;
    // Scratch buffers reused across insertions.
    let mut bad: Vec<usize> = Vec::new();
    let mut cavity_edges: Vec<(usize, usize, usize)> = Vec::new(); // (a, b, outer_neighbour)
    let mut stack: Vec<usize> = Vec::new();
    let mut visited_mark: Vec<u32> = Vec::new();
    let mut mark_epoch: u32 = 0;

    for &pi in &order {
        let p = verts[pi];
        // Locate a triangle whose circumcircle contains p (start from last_alive).
        let start = locate(&tris, &verts, last_alive, &p);
        let start = match start {
            Some(t) => t,
            None => {
                // Walking failed (should not happen with the huge super-triangle);
                // fall back to a linear scan.
                match tris.iter().position(|t| t.alive && contains(&verts, t, &p)) {
                    Some(t) => t,
                    None => continue,
                }
            }
        };

        // Skip exact/near duplicates of an existing vertex: re-inserting them
        // would create degenerate, overlapping triangles.
        let dup_tol = 1e-24; // squared distance
        if tris[start].v.iter().any(|&v| verts[v].distance_sq(&p) < dup_tol) {
            continue;
        }

        // Grow the cavity: all alive triangles whose circumcircle contains p,
        // connected to `start`.
        mark_epoch += 1;
        if visited_mark.len() < tris.len() {
            visited_mark.resize(tris.len(), 0);
        }
        bad.clear();
        stack.clear();
        stack.push(start);
        visited_mark[start] = mark_epoch;
        while let Some(t) = stack.pop() {
            let tri = &tris[t];
            if !tri.alive {
                continue;
            }
            let a = &verts[tri.v[0]];
            let b = &verts[tri.v[1]];
            let c = &verts[tri.v[2]];
            if in_circumcircle(a, b, c, &p) || t == start {
                bad.push(t);
                for &nb in &tri.n {
                    if nb != NONE && visited_mark[nb] != mark_epoch {
                        visited_mark[nb] = mark_epoch;
                        stack.push(nb);
                    }
                }
            }
        }
        if bad.is_empty() {
            continue;
        }

        // Boundary of the cavity: edges of bad triangles whose neighbour is not bad.
        mark_epoch += 1;
        for &t in &bad {
            visited_mark[t] = mark_epoch;
        }
        cavity_edges.clear();
        for &t in &bad {
            let tri = tris[t];
            for k in 0..3 {
                let nb = tri.n[k];
                let is_bad_nb = nb != NONE && visited_mark[nb] == mark_epoch;
                if !is_bad_nb {
                    // Edge opposite to vertex k: (v[k+1], v[k+2])
                    let a = tri.v[(k + 1) % 3];
                    let b = tri.v[(k + 2) % 3];
                    cavity_edges.push((a, b, nb));
                }
            }
            tris[t].alive = false;
        }

        // Re-triangulate the cavity: one new triangle per boundary edge.
        let first_new = tris.len();
        for &(a, b, outer) in &cavity_edges {
            let mut v = [a, b, pi];
            // Ensure counter-clockwise orientation.
            if orient2d(&verts[v[0]], &verts[v[1]], &verts[v[2]]) < 0.0 {
                v.swap(0, 1);
            }
            tris.push(Triangle { v, n: [NONE, NONE, outer], alive: true });
        }
        // Fix the neighbour links.
        let new_count = tris.len() - first_new;
        for i in 0..new_count {
            let ti = first_new + i;
            // Link to the outer neighbour (stored in n[2] temporarily) across
            // the edge that does not contain pi.
            let outer = tris[ti].n[2];
            let v = tris[ti].v;
            // Find which vertex of the new triangle is pi; the edge opposite
            // to it is the cavity-boundary edge.
            let pi_pos = v.iter().position(|&x| x == pi).unwrap();
            let mut n = [NONE; 3];
            n[pi_pos] = outer;
            tris[ti].n = n;
            if outer != NONE {
                // Update the outer triangle to point back at ti.
                let edge_a = v[(pi_pos + 1) % 3];
                let edge_b = v[(pi_pos + 2) % 3];
                let out_tri = tris[outer];
                for k in 0..3 {
                    let oa = out_tri.v[(k + 1) % 3];
                    let ob = out_tri.v[(k + 2) % 3];
                    if (oa == edge_a && ob == edge_b) || (oa == edge_b && ob == edge_a) {
                        tris[outer].n[k] = ti;
                        break;
                    }
                }
            }
        }
        // Link the new triangles to each other: they share edges containing pi.
        for i in 0..new_count {
            let ti = first_new + i;
            for j in (i + 1)..new_count {
                let tj = first_new + j;
                link_if_shared(&mut tris, ti, tj);
            }
        }
        last_alive = first_new;
    }

    // Collect alive triangles that avoid the super-triangle vertices.
    let mut out = Vec::new();
    for tri in &tris {
        if tri.alive && tri.v.iter().all(|&v| v < s0) {
            let mut v = tri.v;
            if orient2d(&verts[v[0]], &verts[v[1]], &verts[v[2]]) < 0.0 {
                v.swap(1, 2);
            }
            out.push(v);
        }
    }
    out
}

/// Link two triangles as neighbours if they share an edge.
fn link_if_shared(tris: &mut [Triangle], ti: usize, tj: usize) {
    let vi = tris[ti].v;
    let vj = tris[tj].v;
    for a in 0..3 {
        let ea = (vi[(a + 1) % 3], vi[(a + 2) % 3]);
        for b in 0..3 {
            let eb = (vj[(b + 1) % 3], vj[(b + 2) % 3]);
            if ea == eb || ea == (eb.1, eb.0) {
                tris[ti].n[a] = tj;
                tris[tj].n[b] = ti;
                return;
            }
        }
    }
}

/// Does triangle `t` contain point `p` (inclusive of edges)?
fn contains(verts: &[Point2], t: &Triangle, p: &Point2) -> bool {
    let a = &verts[t.v[0]];
    let b = &verts[t.v[1]];
    let c = &verts[t.v[2]];
    let eps = -1e-12;
    orient2d(a, b, p) >= eps && orient2d(b, c, p) >= eps && orient2d(c, a, p) >= eps
}

/// Walk from triangle `start` towards the triangle containing `p`.
fn locate(tris: &[Triangle], verts: &[Point2], start: usize, p: &Point2) -> Option<usize> {
    let mut current = start;
    if !tris[current].alive {
        // find any alive triangle near the end of the list
        current = tris.iter().rposition(|t| t.alive)?;
    }
    let max_steps = tris.len() * 4 + 16;
    for _ in 0..max_steps {
        let tri = &tris[current];
        let a = &verts[tri.v[0]];
        let b = &verts[tri.v[1]];
        let c = &verts[tri.v[2]];
        // Find an edge that strictly separates p from the triangle.
        let o0 = orient2d(b, c, p); // opposite vertex 0
        let o1 = orient2d(c, a, p); // opposite vertex 1
        let o2 = orient2d(a, b, p); // opposite vertex 2
        let (worst, val) = {
            let mut worst = 0;
            let mut val = o0;
            if o1 < val {
                worst = 1;
                val = o1;
            }
            if o2 < val {
                worst = 2;
                val = o2;
            }
            (worst, val)
        };
        if val >= -1e-12 {
            return Some(current);
        }
        let next = tri.n[worst];
        if next == NONE || !tris[next].alive {
            return Some(current);
        }
        current = next;
    }
    None
}

/// Sort point indices along a Morton (Z-order) curve for insertion locality.
fn morton_order(points: &[Point2], min_x: f64, min_y: f64, extent: f64) -> Vec<usize> {
    let scale = 65535.0 / extent.max(1e-12);
    let mut keyed: Vec<(u64, usize)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let ix = (((p.x - min_x) * scale).clamp(0.0, 65535.0)) as u32;
            let iy = (((p.y - min_y) * scale).clamp(0.0, 65535.0)) as u32;
            (interleave(ix) | (interleave(iy) << 1), i)
        })
        .collect();
    keyed.sort_unstable_by_key(|&(k, _)| k);
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Interleave the lower 16 bits of `x` with zeros.
fn interleave(mut x: u32) -> u64 {
    x &= 0xFFFF;
    let mut z = x as u64;
    z = (z | (z << 8)) & 0x00FF00FF;
    z = (z | (z << 4)) & 0x0F0F0F0F;
    z = (z | (z << 2)) & 0x33333333;
    z = (z | (z << 1)) & 0x55555555;
    z
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn triangulation_area(points: &[Point2], tris: &[[usize; 3]]) -> f64 {
        tris.iter()
            .map(|t| crate::geometry::triangle_area(&points[t[0]], &points[t[1]], &points[t[2]]))
            .sum()
    }

    /// Every triangle of a Delaunay triangulation must have an empty
    /// circumcircle (up to tolerance for near-degenerate configurations).
    fn check_delaunay_property(points: &[Point2], tris: &[[usize; 3]]) {
        for t in tris {
            let a = &points[t[0]];
            let b = &points[t[1]];
            let c = &points[t[2]];
            if let Some((center, r2)) = crate::geometry::circumcircle(a, b, c) {
                for (i, p) in points.iter().enumerate() {
                    if i == t[0] || i == t[1] || i == t[2] {
                        continue;
                    }
                    let d2 = center.distance_sq(p);
                    assert!(
                        d2 >= r2 * (1.0 - 1e-9),
                        "point {i} violates empty-circumcircle property"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(triangulate(&[]).is_empty());
        assert!(triangulate(&[Point2::new(0.0, 0.0)]).is_empty());
        assert!(triangulate(&[Point2::new(0.0, 0.0), Point2::new(1.0, 0.0)]).is_empty());
    }

    #[test]
    fn single_triangle() {
        let pts = vec![Point2::new(0.0, 0.0), Point2::new(1.0, 0.0), Point2::new(0.0, 1.0)];
        let tris = triangulate(&pts);
        assert_eq!(tris.len(), 1);
        let t = tris[0];
        assert!(orient2d(&pts[t[0]], &pts[t[1]], &pts[t[2]]) > 0.0);
    }

    #[test]
    fn unit_square_grid() {
        // 4x4 grid of points covering the unit square: total triangulated area = 1.
        let mut pts = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                pts.push(Point2::new(i as f64 / 3.0, j as f64 / 3.0 + 1e-6 * (i as f64)));
            }
        }
        let tris = triangulate(&pts);
        let area = triangulation_area(&pts, &tris);
        assert!((area - 1.0).abs() < 1e-6, "area {area}");
        check_delaunay_property(&pts, &tris);
    }

    #[test]
    fn random_points_satisfy_delaunay_property() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let pts: Vec<Point2> = (0..120)
            .map(|_| Point2::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
            .collect();
        let tris = triangulate(&pts);
        assert!(!tris.is_empty());
        check_delaunay_property(&pts, &tris);
        // Euler: for a triangulation of a point set (convex hull), T = 2n - 2 - h
        // where h is hull size; only sanity-check the order of magnitude here.
        assert!(tris.len() > pts.len());
    }

    #[test]
    fn convex_hull_area_is_covered() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let pts: Vec<Point2> = (0..300)
            .map(|_| {
                let r: f64 = rng.gen_range(0.0..1.0);
                let t: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                Point2::new(r.sqrt() * t.cos(), r.sqrt() * t.sin())
            })
            .collect();
        let tris = triangulate(&pts);
        let area = triangulation_area(&pts, &tris);
        // The convex hull of many random points in the unit disk approaches
        // the disk area π; the triangulation must cover the hull exactly, so
        // the area must be close to (slightly below) π.
        assert!(area > 2.6 && area < std::f64::consts::PI + 1e-9, "area {area}");
    }

    #[test]
    fn duplicate_points_are_tolerated() {
        let pts = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 1.0),
        ];
        let tris = triangulate(&pts);
        let area = triangulation_area(&pts, &tris);
        assert!((area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn larger_random_set_is_consistent() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let pts: Vec<Point2> = (0..5000)
            .map(|_| Point2::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..7.0)))
            .collect();
        let tris = triangulate(&pts);
        // All triangles positively oriented and no degenerate areas.
        for t in &tris {
            let area = crate::geometry::triangle_area(&pts[t[0]], &pts[t[1]], &pts[t[2]]);
            assert!(area > 0.0);
        }
        // Total area approaches the bounding rectangle area (70) from below.
        let area = triangulation_area(&pts, &tris);
        assert!(area > 65.0 && area < 70.0 + 1e-6, "area {area}");
    }
}
