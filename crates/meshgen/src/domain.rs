//! Computational domains: the geometric regions that get meshed.
//!
//! The paper's dataset uses random 2D domains whose boundary interpolates 20
//! points sampled around the unit circle with smooth curves (Section IV-A),
//! scaled up for larger problems, plus a "caricatural Formula 1" domain with
//! holes for the Fig. 5 out-of-distribution experiment.  Every domain exposes
//! its boundary as closed polygon loops (outer boundary first, then holes) and
//! an inside test; the mesh generator consumes nothing else.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::geometry::{
    catmull_rom_closed, distance_to_polygon, point_in_polygon, polygon_area, Point2,
};

/// A bounded 2D region described by closed boundary loops.
pub trait Domain {
    /// Closed boundary loops: the first loop is the outer boundary
    /// (counter-clockwise), subsequent loops are holes.
    fn boundary_loops(&self) -> Vec<Vec<Point2>>;

    /// Whether a point lies inside the domain (inside the outer loop and
    /// outside every hole).
    fn contains(&self, p: &Point2) -> bool {
        let loops = self.boundary_loops();
        if loops.is_empty() {
            return false;
        }
        if !point_in_polygon(p, &loops[0]) {
            return false;
        }
        for hole in &loops[1..] {
            if point_in_polygon(p, hole) {
                return false;
            }
        }
        true
    }

    /// Distance from `p` to the nearest boundary (outer or hole).
    fn distance_to_boundary(&self, p: &Point2) -> f64 {
        self.boundary_loops()
            .iter()
            .map(|l| distance_to_polygon(p, l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Axis-aligned bounding box `(min, max)` of the outer boundary.
    fn bounding_box(&self) -> (Point2, Point2) {
        let loops = self.boundary_loops();
        let mut min = Point2::new(f64::INFINITY, f64::INFINITY);
        let mut max = Point2::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
        if let Some(outer) = loops.first() {
            for p in outer {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
            }
        }
        (min, max)
    }

    /// Approximate area of the domain (outer loop minus holes).
    fn area(&self) -> f64 {
        let loops = self.boundary_loops();
        let mut area = 0.0;
        for (i, l) in loops.iter().enumerate() {
            let a = polygon_area(l).abs();
            if i == 0 {
                area += a;
            } else {
                area -= a;
            }
        }
        area.max(0.0)
    }
}

/// A circular domain.
#[derive(Debug, Clone)]
pub struct CircleDomain {
    /// Center of the circle.
    pub center: Point2,
    /// Radius.
    pub radius: f64,
    /// Number of polygon segments used to approximate the boundary.
    pub segments: usize,
}

impl CircleDomain {
    /// Unit-ish circle with a default boundary resolution.
    pub fn new(center: Point2, radius: f64) -> Self {
        CircleDomain { center, radius, segments: 256 }
    }
}

impl Domain for CircleDomain {
    fn boundary_loops(&self) -> Vec<Vec<Point2>> {
        let pts = (0..self.segments)
            .map(|i| {
                let t = i as f64 / self.segments as f64 * std::f64::consts::TAU;
                Point2::new(
                    self.center.x + self.radius * t.cos(),
                    self.center.y + self.radius * t.sin(),
                )
            })
            .collect();
        vec![pts]
    }

    fn contains(&self, p: &Point2) -> bool {
        p.distance(&self.center) < self.radius
    }

    fn distance_to_boundary(&self, p: &Point2) -> f64 {
        (self.radius - p.distance(&self.center)).abs()
    }
}

/// An axis-aligned rectangle.
#[derive(Debug, Clone)]
pub struct RectangleDomain {
    /// Lower-left corner.
    pub min: Point2,
    /// Upper-right corner.
    pub max: Point2,
}

impl RectangleDomain {
    /// Rectangle `[x0, x1] × [y0, y1]`.
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        RectangleDomain { min: Point2::new(x0, y0), max: Point2::new(x1, y1) }
    }
}

impl Domain for RectangleDomain {
    fn boundary_loops(&self) -> Vec<Vec<Point2>> {
        vec![vec![
            Point2::new(self.min.x, self.min.y),
            Point2::new(self.max.x, self.min.y),
            Point2::new(self.max.x, self.max.y),
            Point2::new(self.min.x, self.max.y),
        ]]
    }

    fn contains(&self, p: &Point2) -> bool {
        p.x > self.min.x && p.x < self.max.x && p.y > self.min.y && p.y < self.max.y
    }
}

/// A general polygon-with-holes domain.
#[derive(Debug, Clone)]
pub struct PolygonDomain {
    loops: Vec<Vec<Point2>>,
}

impl PolygonDomain {
    /// Build from explicit loops (outer boundary first, then holes).
    pub fn new(loops: Vec<Vec<Point2>>) -> Self {
        assert!(!loops.is_empty(), "polygon domain needs at least an outer loop");
        PolygonDomain { loops }
    }
}

impl Domain for PolygonDomain {
    fn boundary_loops(&self) -> Vec<Vec<Point2>> {
        self.loops.clone()
    }
}

/// The paper's random smooth domain: `n_control` points sampled around the
/// unit circle with random radii, joined by a smooth closed spline, scaled by
/// `radius_scale`.
///
/// Increasing `radius_scale` while keeping the element size fixed is exactly
/// how the paper grows problems from ~2k to ~600k nodes.
#[derive(Debug, Clone)]
pub struct RandomBlobDomain {
    polygon: Vec<Point2>,
}

impl RandomBlobDomain {
    /// Sample a random smooth domain.
    ///
    /// * `seed` — RNG seed (each seed is one "global domain" of the dataset),
    /// * `n_control` — number of boundary control points (the paper uses 20),
    /// * `radius_scale` — multiplicative scale applied to the whole domain.
    pub fn generate(seed: u64, n_control: usize, radius_scale: f64) -> Self {
        assert!(n_control >= 4, "need at least 4 control points");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Sorted random angles with a minimum gap, random radii in [0.6, 1.3].
        let mut angles: Vec<f64> =
            (0..n_control).map(|_| rng.gen_range(0.0..std::f64::consts::TAU)).collect();
        angles.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Enforce a minimum angular gap to avoid self-intersecting splines.
        let min_gap = 0.2 * std::f64::consts::TAU / n_control as f64;
        for i in 1..n_control {
            if angles[i] - angles[i - 1] < min_gap {
                angles[i] = angles[i - 1] + min_gap;
            }
        }
        let control: Vec<Point2> = angles
            .iter()
            .map(|&t| {
                let r = rng.gen_range(0.6..1.3) * radius_scale;
                Point2::new(r * t.cos(), r * t.sin())
            })
            .collect();
        let polygon = catmull_rom_closed(&control, 12);
        RandomBlobDomain { polygon }
    }

    /// The underlying boundary polygon.
    pub fn polygon(&self) -> &[Point2] {
        &self.polygon
    }
}

impl Domain for RandomBlobDomain {
    fn boundary_loops(&self) -> Vec<Vec<Point2>> {
        vec![self.polygon.clone()]
    }
}

/// A caricatural Formula-1 car silhouette with holes (cockpit and wing
/// stripes), reproducing the out-of-distribution geometry of Fig. 5.
///
/// The silhouette is a long, low body with a front and rear wing; the holes
/// are the cockpit opening and two stripe slots in the wings.
#[derive(Debug, Clone)]
pub struct FormulaOneDomain {
    scale: f64,
}

impl FormulaOneDomain {
    /// Create the domain.  `scale` multiplies all coordinates (the nominal
    /// body is about 6 × 1.6 units).
    pub fn new(scale: f64) -> Self {
        FormulaOneDomain { scale }
    }

    fn body_outline(&self) -> Vec<Point2> {
        // A hand-drawn closed outline of a side-view F1 car: front wing, nose,
        // cockpit hump, engine cover, rear wing.  Counter-clockwise.
        let raw = [
            (0.0, 0.0),
            (0.8, -0.05),
            (1.6, -0.08),
            (2.4, -0.08),
            (3.2, -0.08),
            (4.0, -0.08),
            (4.8, -0.05),
            (5.6, 0.0),
            (6.0, 0.05),
            (6.05, 0.5),
            (5.9, 0.55),
            (5.6, 0.35),
            (5.2, 0.3),
            (4.8, 0.45),
            (4.4, 0.7),
            (4.0, 0.85),
            (3.6, 0.9),
            (3.2, 0.95),
            (2.8, 1.0),
            (2.5, 1.05),
            (2.2, 0.95),
            (1.9, 0.7),
            (1.6, 0.5),
            (1.2, 0.35),
            (0.8, 0.3),
            (0.4, 0.35),
            (0.1, 0.5),
            (-0.05, 0.55),
            (-0.1, 0.3),
            (-0.05, 0.1),
        ];
        raw.iter().map(|&(x, y)| Point2::new(x * self.scale, y * self.scale)).collect()
    }

    fn cockpit_hole(&self) -> Vec<Point2> {
        // An oval cockpit opening near the middle of the car.
        let cx = 2.6 * self.scale;
        let cy = 0.55 * self.scale;
        let rx = 0.35 * self.scale;
        let ry = 0.18 * self.scale;
        (0..40)
            .map(|i| {
                let t = i as f64 / 40.0 * std::f64::consts::TAU;
                Point2::new(cx + rx * t.cos(), cy + ry * t.sin())
            })
            .collect()
    }

    fn wing_stripe(&self, x0: f64, x1: f64, y0: f64, y1: f64) -> Vec<Point2> {
        vec![
            Point2::new(x0 * self.scale, y0 * self.scale),
            Point2::new(x1 * self.scale, y0 * self.scale),
            Point2::new(x1 * self.scale, y1 * self.scale),
            Point2::new(x0 * self.scale, y1 * self.scale),
        ]
    }
}

impl Domain for FormulaOneDomain {
    fn boundary_loops(&self) -> Vec<Vec<Point2>> {
        vec![
            self.body_outline(),
            self.cockpit_hole(),
            // Front wing stripe and rear wing stripe.
            self.wing_stripe(0.15, 0.65, 0.1, 0.2),
            self.wing_stripe(5.45, 5.85, 0.12, 0.25),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circle_contains_and_distance() {
        let c = CircleDomain::new(Point2::new(0.0, 0.0), 2.0);
        assert!(c.contains(&Point2::new(1.0, 0.0)));
        assert!(!c.contains(&Point2::new(2.5, 0.0)));
        assert!((c.distance_to_boundary(&Point2::new(1.0, 0.0)) - 1.0).abs() < 1e-12);
        assert!((c.area() - std::f64::consts::PI * 4.0).abs() < 0.05);
        let (min, max) = c.bounding_box();
        assert!(min.x < -1.99 && max.x > 1.99);
    }

    #[test]
    fn rectangle_contains() {
        let r = RectangleDomain::new(0.0, 0.0, 2.0, 1.0);
        assert!(r.contains(&Point2::new(1.0, 0.5)));
        assert!(!r.contains(&Point2::new(3.0, 0.5)));
        assert!((r.area() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn polygon_domain_with_hole() {
        let outer = vec![
            Point2::new(0.0, 0.0),
            Point2::new(4.0, 0.0),
            Point2::new(4.0, 4.0),
            Point2::new(0.0, 4.0),
        ];
        let hole = vec![
            Point2::new(1.5, 1.5),
            Point2::new(2.5, 1.5),
            Point2::new(2.5, 2.5),
            Point2::new(1.5, 2.5),
        ];
        let d = PolygonDomain::new(vec![outer, hole]);
        assert!(d.contains(&Point2::new(0.5, 0.5)));
        assert!(!d.contains(&Point2::new(2.0, 2.0)), "point inside the hole");
        assert!(!d.contains(&Point2::new(5.0, 5.0)));
        assert!((d.area() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn random_blob_is_reasonable_and_deterministic() {
        let d1 = RandomBlobDomain::generate(7, 20, 1.0);
        let d2 = RandomBlobDomain::generate(7, 20, 1.0);
        assert_eq!(d1.polygon().len(), d2.polygon().len());
        for (a, b) in d1.polygon().iter().zip(d2.polygon().iter()) {
            assert_eq!(a, b);
        }
        // The centroid-ish point must be inside and the area positive and
        // bounded by the enclosing circle of radius 1.3.
        assert!(d1.area() > 0.3);
        assert!(d1.area() < std::f64::consts::PI * 1.3 * 1.3 * 1.2);
        // Scaling the radius scales the area quadratically.
        let big = RandomBlobDomain::generate(7, 20, 3.0);
        let ratio = big.area() / d1.area();
        assert!((ratio - 9.0).abs() < 0.5, "area ratio {ratio}");
    }

    #[test]
    fn different_seeds_give_different_domains() {
        let d1 = RandomBlobDomain::generate(1, 20, 1.0);
        let d2 = RandomBlobDomain::generate(2, 20, 1.0);
        let same = d1.polygon().iter().zip(d2.polygon().iter()).all(|(a, b)| a.distance(b) < 1e-12);
        assert!(!same);
    }

    #[test]
    fn formula_one_has_holes() {
        let f1 = FormulaOneDomain::new(1.0);
        let loops = f1.boundary_loops();
        assert_eq!(loops.len(), 4, "outline + cockpit + 2 stripes");
        // A point in the body is inside, a point in the cockpit hole is not.
        assert!(f1.contains(&Point2::new(3.0, 0.2)));
        assert!(!f1.contains(&Point2::new(2.6, 0.55)), "cockpit is a hole");
        assert!(!f1.contains(&Point2::new(0.4, 0.15)), "front wing stripe is a hole");
        assert!(!f1.contains(&Point2::new(10.0, 10.0)));
        assert!(f1.area() > 0.0);
    }
}
