//! Planar geometry primitives and predicates.

/// A point (or vector) in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point2 {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point2 {
    /// Construct a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Squared distance (avoids the square root in hot loops).
    pub fn distance_sq(&self, other: &Point2) -> f64 {
        (self.x - other.x).powi(2) + (self.y - other.y).powi(2)
    }

    /// Vector difference `self - other`.
    pub fn sub(&self, other: &Point2) -> Point2 {
        Point2::new(self.x - other.x, self.y - other.y)
    }

    /// Vector sum.
    pub fn add(&self, other: &Point2) -> Point2 {
        Point2::new(self.x + other.x, self.y + other.y)
    }

    /// Scale by a scalar.
    pub fn scale(&self, s: f64) -> Point2 {
        Point2::new(self.x * s, self.y * s)
    }

    /// Euclidean norm when interpreted as a vector.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Midpoint of two points.
    pub fn midpoint(&self, other: &Point2) -> Point2 {
        Point2::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }
}

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive when the vertices are in counter-clockwise order.
#[inline]
pub fn orient2d(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Whether point `d` lies strictly inside the circumcircle of the
/// counter-clockwise triangle `(a, b, c)`.
///
/// This is the standard 3×3 determinant incircle predicate evaluated in
/// floating point; the mesh generator protects it by jittering lattice points
/// so near-degenerate configurations are rare.
#[inline]
pub fn in_circumcircle(a: &Point2, b: &Point2, c: &Point2, d: &Point2) -> bool {
    let adx = a.x - d.x;
    let ady = a.y - d.y;
    let bdx = b.x - d.x;
    let bdy = b.y - d.y;
    let cdx = c.x - d.x;
    let cdy = c.y - d.y;

    let ad = adx * adx + ady * ady;
    let bd = bdx * bdx + bdy * bdy;
    let cd = cdx * cdx + cdy * cdy;

    let det =
        adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) + ad * (bdx * cdy - bdy * cdx);
    det > 0.0
}

/// Circumcenter and squared circumradius of a triangle.  Returns `None` for
/// (numerically) degenerate triangles.
pub fn circumcircle(a: &Point2, b: &Point2, c: &Point2) -> Option<(Point2, f64)> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-300 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    let ux = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
    let uy = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
    let center = Point2::new(ux, uy);
    let r2 = center.distance_sq(a);
    Some((center, r2))
}

/// Area of a triangle (always non-negative).
pub fn triangle_area(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    0.5 * orient2d(a, b, c).abs()
}

/// Smallest interior angle of a triangle, in radians.
pub fn min_angle(a: &Point2, b: &Point2, c: &Point2) -> f64 {
    let la = b.distance(c);
    let lb = a.distance(c);
    let lc = a.distance(b);
    if la == 0.0 || lb == 0.0 || lc == 0.0 {
        return 0.0;
    }
    let angle_a = ((lb * lb + lc * lc - la * la) / (2.0 * lb * lc)).clamp(-1.0, 1.0).acos();
    let angle_b = ((la * la + lc * lc - lb * lb) / (2.0 * la * lc)).clamp(-1.0, 1.0).acos();
    let angle_c = std::f64::consts::PI - angle_a - angle_b;
    angle_a.min(angle_b).min(angle_c)
}

/// Even–odd (crossing number) point-in-polygon test for a closed polyline.
///
/// The polygon is given as an ordered list of vertices without repetition of
/// the first vertex at the end.
pub fn point_in_polygon(p: &Point2, polygon: &[Point2]) -> bool {
    let n = polygon.len();
    if n < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let pi = &polygon[i];
        let pj = &polygon[j];
        let crosses = (pi.y > p.y) != (pj.y > p.y);
        if crosses {
            let x_at_y = pj.x + (p.y - pj.y) / (pi.y - pj.y) * (pi.x - pj.x);
            if p.x < x_at_y {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Signed area of a simple polygon (positive when counter-clockwise).
pub fn polygon_area(polygon: &[Point2]) -> f64 {
    let n = polygon.len();
    let mut acc = 0.0;
    for i in 0..n {
        let j = (i + 1) % n;
        acc += polygon[i].x * polygon[j].y - polygon[j].x * polygon[i].y;
    }
    0.5 * acc
}

/// Distance from a point to a segment `[a, b]`.
pub fn distance_to_segment(p: &Point2, a: &Point2, b: &Point2) -> f64 {
    let ab = b.sub(a);
    let ap = p.sub(a);
    let len2 = ab.x * ab.x + ab.y * ab.y;
    if len2 <= 0.0 {
        return p.distance(a);
    }
    let t = ((ap.x * ab.x + ap.y * ab.y) / len2).clamp(0.0, 1.0);
    let proj = Point2::new(a.x + t * ab.x, a.y + t * ab.y);
    p.distance(&proj)
}

/// Minimum distance from a point to a closed polygon boundary.
pub fn distance_to_polygon(p: &Point2, polygon: &[Point2]) -> f64 {
    let n = polygon.len();
    let mut best = f64::INFINITY;
    for i in 0..n {
        let j = (i + 1) % n;
        best = best.min(distance_to_segment(p, &polygon[i], &polygon[j]));
    }
    best
}

/// Closed Catmull–Rom spline through `control` points, sampled with
/// `samples_per_segment` points per control segment.  Used to turn the
/// paper's "20 points connected with Bezier curves" into a smooth polygon.
pub fn catmull_rom_closed(control: &[Point2], samples_per_segment: usize) -> Vec<Point2> {
    let n = control.len();
    assert!(n >= 3, "need at least 3 control points");
    assert!(samples_per_segment >= 1);
    let mut out = Vec::with_capacity(n * samples_per_segment);
    for i in 0..n {
        let p0 = control[(i + n - 1) % n];
        let p1 = control[i];
        let p2 = control[(i + 1) % n];
        let p3 = control[(i + 2) % n];
        for s in 0..samples_per_segment {
            let t = s as f64 / samples_per_segment as f64;
            let t2 = t * t;
            let t3 = t2 * t;
            let x = 0.5
                * ((2.0 * p1.x)
                    + (-p0.x + p2.x) * t
                    + (2.0 * p0.x - 5.0 * p1.x + 4.0 * p2.x - p3.x) * t2
                    + (-p0.x + 3.0 * p1.x - 3.0 * p2.x + p3.x) * t3);
            let y = 0.5
                * ((2.0 * p1.y)
                    + (-p0.y + p2.y) * t
                    + (2.0 * p0.y - 5.0 * p1.y + 4.0 * p2.y - p3.y) * t2
                    + (-p0.y + 3.0 * p1.y - 3.0 * p2.y + p3.y) * t3);
            out.push(Point2::new(x, y));
        }
    }
    out
}

/// Resample a closed polygon so consecutive vertices are approximately
/// `target_spacing` apart.
pub fn resample_closed_polyline(polygon: &[Point2], target_spacing: f64) -> Vec<Point2> {
    assert!(target_spacing > 0.0);
    let n = polygon.len();
    if n < 3 {
        return polygon.to_vec();
    }
    let mut perimeter = 0.0;
    for i in 0..n {
        perimeter += polygon[i].distance(&polygon[(i + 1) % n]);
    }
    let count = ((perimeter / target_spacing).round() as usize).max(3);
    let step = perimeter / count as f64;
    let mut out = Vec::with_capacity(count);
    let mut seg = 0usize;
    let mut seg_start = polygon[0];
    let mut seg_end = polygon[1 % n];
    let mut seg_len = seg_start.distance(&seg_end);
    let mut along = 0.0;
    let mut travelled = 0.0;
    for k in 0..count {
        let target = k as f64 * step;
        while travelled + (seg_len - along) < target && seg < n {
            travelled += seg_len - along;
            along = 0.0;
            seg += 1;
            seg_start = polygon[seg % n];
            seg_end = polygon[(seg + 1) % n];
            seg_len = seg_start.distance(&seg_end);
        }
        let need = target - travelled;
        let t = if seg_len > 0.0 { (along + need) / seg_len } else { 0.0 };
        out.push(Point2::new(
            seg_start.x + t * (seg_end.x - seg_start.x),
            seg_start.y + t * (seg_end.y - seg_start.y),
        ));
        along += need;
        travelled = target;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic() {
        let a = Point2::new(1.0, 2.0);
        let b = Point2::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
        assert_eq!(b.sub(&a), Point2::new(3.0, 4.0));
        assert_eq!(a.add(&b), Point2::new(5.0, 8.0));
        assert_eq!(a.scale(2.0), Point2::new(2.0, 4.0));
        assert_eq!(b.sub(&a).norm(), 5.0);
        assert_eq!(a.midpoint(&b), Point2::new(2.5, 4.0));
    }

    #[test]
    fn orientation_sign() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!(orient2d(&a, &b, &c) > 0.0);
        assert!(orient2d(&a, &c, &b) < 0.0);
        assert_eq!(orient2d(&a, &b, &Point2::new(2.0, 0.0)), 0.0);
    }

    #[test]
    fn incircle_predicate() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!(in_circumcircle(&a, &b, &c, &Point2::new(0.3, 0.3)));
        assert!(!in_circumcircle(&a, &b, &c, &Point2::new(2.0, 2.0)));
    }

    #[test]
    fn circumcircle_of_right_triangle() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(2.0, 0.0);
        let c = Point2::new(0.0, 2.0);
        let (center, r2) = circumcircle(&a, &b, &c).unwrap();
        assert!((center.x - 1.0).abs() < 1e-12);
        assert!((center.y - 1.0).abs() < 1e-12);
        assert!((r2 - 2.0).abs() < 1e-12);
        // Degenerate (collinear) triangle
        assert!(circumcircle(&a, &b, &Point2::new(4.0, 0.0)).is_none());
    }

    #[test]
    fn areas_and_angles() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        let c = Point2::new(0.0, 1.0);
        assert!((triangle_area(&a, &b, &c) - 0.5).abs() < 1e-12);
        let angle = min_angle(&a, &b, &c);
        assert!((angle - std::f64::consts::FRAC_PI_4).abs() < 1e-10);
        // Equilateral triangle: min angle 60 degrees.
        let eq = min_angle(
            &Point2::new(0.0, 0.0),
            &Point2::new(1.0, 0.0),
            &Point2::new(0.5, 3.0_f64.sqrt() / 2.0),
        );
        assert!((eq - std::f64::consts::FRAC_PI_3).abs() < 1e-10);
    }

    #[test]
    fn polygon_tests() {
        let square = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        assert!(point_in_polygon(&Point2::new(0.5, 0.5), &square));
        assert!(!point_in_polygon(&Point2::new(1.5, 0.5), &square));
        assert!((polygon_area(&square) - 1.0).abs() < 1e-12);
        let reversed: Vec<Point2> = square.iter().rev().copied().collect();
        assert!((polygon_area(&reversed) + 1.0).abs() < 1e-12);
        assert!((distance_to_polygon(&Point2::new(0.5, 0.5), &square) - 0.5).abs() < 1e-12);
        assert!((distance_to_polygon(&Point2::new(2.0, 0.5), &square) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_distance() {
        let a = Point2::new(0.0, 0.0);
        let b = Point2::new(1.0, 0.0);
        assert!((distance_to_segment(&Point2::new(0.5, 1.0), &a, &b) - 1.0).abs() < 1e-12);
        assert!((distance_to_segment(&Point2::new(-1.0, 0.0), &a, &b) - 1.0).abs() < 1e-12);
        assert!((distance_to_segment(&Point2::new(0.3, 0.0), &a, &a) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn catmull_rom_interpolates_control_points() {
        let control = vec![
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(-1.0, 0.0),
            Point2::new(0.0, -1.0),
        ];
        let curve = catmull_rom_closed(&control, 8);
        assert_eq!(curve.len(), 32);
        // The spline passes exactly through the control points at t = 0.
        for (i, c) in control.iter().enumerate() {
            let sampled = curve[i * 8];
            assert!(sampled.distance(c) < 1e-12);
        }
    }

    #[test]
    fn resample_spacing_is_roughly_uniform() {
        let square = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let pts = resample_closed_polyline(&square, 0.1);
        assert!(pts.len() >= 35 && pts.len() <= 45, "got {}", pts.len());
        for i in 0..pts.len() {
            let d = pts[i].distance(&pts[(i + 1) % pts.len()]);
            assert!(d < 0.2, "spacing too large: {d}");
        }
    }
}
