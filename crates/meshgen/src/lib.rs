//! Unstructured 2D triangular mesh generation.
//!
//! The paper generates its datasets with GMSH: random 2D domains whose
//! boundary interpolates 20 points sampled around the unit circle with smooth
//! curves, meshed into unstructured triangles of roughly constant element
//! size, plus one large "Formula-1" shaped domain with holes for the
//! out-of-distribution experiment (Fig. 5).  This crate reproduces that
//! pipeline without external tools:
//!
//! * [`geometry`] — points, orientation/incircle predicates, polygons,
//! * [`domain`] — the [`domain::Domain`] trait and concrete domains (random
//!   smooth blobs, circles, rectangles, and the Formula-1 caricature with
//!   holes),
//! * [`delaunay`] — Bowyer–Watson Delaunay triangulation with walking point
//!   location, suitable for hundreds of thousands of points,
//! * [`mesh`] — the [`mesh::Mesh`] data structure (nodes, triangles, boundary
//!   markers, adjacency, quality metrics),
//! * [`generator`] — boundary sampling + interior seeding + triangulation +
//!   clipping, the GMSH substitute used by every experiment.

pub mod delaunay;
pub mod domain;
pub mod generator;
pub mod geometry;
pub mod mesh;

pub use domain::{
    CircleDomain, Domain, FormulaOneDomain, PolygonDomain, RandomBlobDomain, RectangleDomain,
};
pub use generator::{generate_mesh, MeshingOptions};
pub use geometry::Point2;
pub use mesh::Mesh;
