//! Mesh generation: the GMSH substitute.
//!
//! The pipeline mirrors what the paper obtains from GMSH:
//!
//! 1. sample the domain boundary loops at the target element size `h`,
//! 2. seed interior points on a jittered hexagonal lattice of pitch `h`,
//!    discarding points too close to the boundary,
//! 3. Delaunay-triangulate boundary + interior points,
//! 4. discard triangles whose centroid falls outside the domain (this carves
//!    holes and concave features out of the convex-hull triangulation),
//! 5. drop orphan nodes, re-index, and detect boundary nodes.
//!
//! The jitter keeps the point set in general position (protecting the
//! floating-point incircle predicate) and produces the irregular node degrees
//! of a genuinely unstructured mesh.

use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

use crate::delaunay::triangulate;
use crate::domain::Domain;
use crate::geometry::{resample_closed_polyline, triangle_area, Point2};
use crate::mesh::Mesh;

/// Options controlling mesh generation.
#[derive(Debug, Clone)]
pub struct MeshingOptions {
    /// Target element size (edge length).
    pub element_size: f64,
    /// Relative jitter applied to interior lattice points (fraction of `h`).
    pub jitter: f64,
    /// Minimum distance from interior points to the boundary, in units of `h`.
    pub boundary_clearance: f64,
    /// RNG seed for the jitter.
    pub seed: u64,
}

impl Default for MeshingOptions {
    fn default() -> Self {
        MeshingOptions { element_size: 0.05, jitter: 0.25, boundary_clearance: 0.6, seed: 0 }
    }
}

impl MeshingOptions {
    /// Options with the given element size and otherwise defaults.
    pub fn with_element_size(element_size: f64) -> Self {
        MeshingOptions { element_size, ..Default::default() }
    }

    /// Builder-style seed setter.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generate an unstructured triangular mesh of `domain`.
pub fn generate_mesh(domain: &dyn Domain, options: &MeshingOptions) -> Mesh {
    let h = options.element_size;
    assert!(h > 0.0, "element size must be positive");
    let mut rng = ChaCha8Rng::seed_from_u64(options.seed);

    // 1. Boundary points: every loop resampled at spacing ~h.
    let loops = domain.boundary_loops();
    let mut points: Vec<Point2> = Vec::new();
    for l in &loops {
        let resampled = resample_closed_polyline(l, h);
        points.extend(resampled);
    }
    let boundary_point_count = points.len();

    // 2. Interior points on a jittered hexagonal lattice.
    let (min, max) = domain.bounding_box();
    let dy = h * 3.0_f64.sqrt() / 2.0;
    let clearance = options.boundary_clearance * h;
    let mut row = 0usize;
    let mut y = min.y + 0.5 * h;
    while y < max.y {
        let offset = if row.is_multiple_of(2) { 0.0 } else { 0.5 * h };
        let mut x = min.x + 0.5 * h + offset;
        while x < max.x {
            let jx = rng.gen_range(-options.jitter..options.jitter) * h;
            let jy = rng.gen_range(-options.jitter..options.jitter) * h;
            let p = Point2::new(x + jx, y + jy);
            if domain.contains(&p) && domain.distance_to_boundary(&p) > clearance {
                points.push(p);
            }
            x += h;
        }
        y += dy;
        row += 1;
    }

    // 3. Delaunay triangulation of all points.
    let raw_triangles = triangulate(&points);

    // 4. Keep triangles whose centroid is inside the domain and whose area is
    //    non-degenerate.
    let area_floor = 1e-6 * h * h;
    let triangles: Vec<[usize; 3]> = raw_triangles
        .into_iter()
        .filter(|t| {
            let a = &points[t[0]];
            let b = &points[t[1]];
            let c = &points[t[2]];
            if triangle_area(a, b, c) < area_floor {
                return false;
            }
            let centroid = Point2::new((a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0);
            domain.contains(&centroid)
        })
        .collect();

    // 5. Compact (drops any orphan points, e.g. boundary samples of a hole so
    //    small that no triangle survived near it) and detect the boundary.
    let mesh = Mesh::new(points, triangles);
    let mesh = mesh.compact();
    debug_assert!(mesh.num_nodes() <= boundary_point_count + mesh.num_nodes());
    mesh
}

/// Estimate the element size needed for a mesh of roughly `target_nodes`
/// nodes on `domain`.
///
/// For an isotropic triangulation the node count scales like `area / h²`
/// (with a hexagonal-lattice constant of ≈ 1.15), so
/// `h ≈ sqrt(1.15 · area / target)`.
pub fn element_size_for_target_nodes(domain: &dyn Domain, target_nodes: usize) -> f64 {
    assert!(target_nodes > 3);
    let area = domain.area().max(1e-12);
    (1.15 * area / target_nodes as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::{CircleDomain, FormulaOneDomain, RandomBlobDomain, RectangleDomain};

    #[test]
    fn rectangle_mesh_covers_area() {
        let d = RectangleDomain::new(0.0, 0.0, 2.0, 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.1));
        assert!(mesh.num_nodes() > 150, "nodes: {}", mesh.num_nodes());
        assert!(mesh.is_connected());
        let area = mesh.area();
        assert!((area - 2.0).abs() < 0.1, "area {area}");
        // Element size is respected within a factor.
        let h = mesh.mean_edge_length();
        assert!(h > 0.05 && h < 0.2, "mean edge length {h}");
    }

    #[test]
    fn circle_mesh_is_reasonable() {
        let d = CircleDomain::new(Point2::new(0.0, 0.0), 1.0);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(0.08));
        assert!(mesh.is_connected());
        let area = mesh.area();
        assert!((area - std::f64::consts::PI).abs() < 0.15, "area {area}");
        // Mesh quality: no triangle with a pathologically small angle.
        assert!(mesh.min_angle() > 0.05, "min angle {}", mesh.min_angle());
        assert!(mesh.num_boundary_nodes() > 20);
    }

    #[test]
    fn random_blob_mesh_node_count_tracks_target() {
        let d = RandomBlobDomain::generate(3, 20, 1.0);
        let h = element_size_for_target_nodes(&d, 1500);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(h));
        let n = mesh.num_nodes();
        assert!(n > 900 && n < 2400, "expected roughly 1500 nodes, got {n} (h = {h})");
        assert!(mesh.is_connected());
    }

    #[test]
    fn scaling_domain_scales_node_count() {
        // Paper: problems grow by increasing the radius at fixed element size.
        let small = RandomBlobDomain::generate(5, 20, 1.0);
        let large = RandomBlobDomain::generate(5, 20, 2.0);
        let opts = MeshingOptions::with_element_size(0.07);
        let m_small = generate_mesh(&small, &opts);
        let m_large = generate_mesh(&large, &opts);
        let ratio = m_large.num_nodes() as f64 / m_small.num_nodes() as f64;
        assert!(ratio > 2.8 && ratio < 5.5, "node ratio {ratio}");
    }

    #[test]
    fn formula_one_mesh_has_holes() {
        let d = FormulaOneDomain::new(1.0);
        let h = element_size_for_target_nodes(&d, 3000);
        let mesh = generate_mesh(&d, &MeshingOptions::with_element_size(h));
        assert!(mesh.is_connected());
        assert!(mesh.num_nodes() > 1500, "nodes {}", mesh.num_nodes());
        // The mesh area must be close to the domain area (which excludes holes).
        let rel = (mesh.area() - d.area()).abs() / d.area();
        assert!(rel < 0.1, "relative area error {rel}");
        // Hole boundaries add extra boundary nodes compared to a simply
        // connected domain of the same size: at least the outer loop plus the
        // cockpit must be represented.
        assert!(mesh.num_boundary_nodes() > 100);
    }

    #[test]
    fn meshing_is_deterministic_for_fixed_seed() {
        let d = CircleDomain::new(Point2::new(0.0, 0.0), 1.0);
        let opts = MeshingOptions::with_element_size(0.1).seed(42);
        let m1 = generate_mesh(&d, &opts);
        let m2 = generate_mesh(&d, &opts);
        assert_eq!(m1.num_nodes(), m2.num_nodes());
        assert_eq!(m1.triangles, m2.triangles);
    }

    #[test]
    fn element_size_estimate_is_monotone() {
        let d = CircleDomain::new(Point2::new(0.0, 0.0), 1.0);
        let h1 = element_size_for_target_nodes(&d, 1000);
        let h2 = element_size_for_target_nodes(&d, 4000);
        assert!(h2 < h1);
        assert!((h1 / h2 - 2.0).abs() < 1e-9, "quadrupling nodes halves h");
    }
}
