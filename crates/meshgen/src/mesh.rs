//! The unstructured triangular mesh data structure.
//!
//! A [`Mesh`] stores node coordinates, triangles (counter-clockwise vertex
//! triples), and a boundary marker per node.  It also provides the derived
//! quantities the rest of the pipeline needs: the node adjacency graph (for
//! partitioning and for the GNN edge lists), boundary detection, quality
//! metrics and a graph-diameter estimate.

use crate::geometry::{min_angle, triangle_area, Point2};

/// An unstructured triangular mesh.
#[derive(Debug, Clone)]
pub struct Mesh {
    /// Node coordinates.
    pub points: Vec<Point2>,
    /// Triangles as counter-clockwise triples of node indices.
    pub triangles: Vec<[usize; 3]>,
    /// `true` for nodes on the domain boundary (outer boundary or holes).
    pub boundary: Vec<bool>,
}

impl Mesh {
    /// Build a mesh and detect its boundary nodes from the triangle topology:
    /// a node is a boundary node when it belongs to an edge used by exactly
    /// one triangle.
    pub fn new(points: Vec<Point2>, triangles: Vec<[usize; 3]>) -> Self {
        let boundary = detect_boundary(&points, &triangles);
        Mesh { points, triangles, boundary }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.points.len()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Number of boundary nodes.
    pub fn num_boundary_nodes(&self) -> usize {
        self.boundary.iter().filter(|&&b| b).count()
    }

    /// Indices of interior (non-boundary) nodes.
    pub fn interior_nodes(&self) -> Vec<usize> {
        (0..self.num_nodes()).filter(|&i| !self.boundary[i]).collect()
    }

    /// Node-to-node adjacency through mesh edges, as a vector of sorted
    /// neighbour lists (self-loops excluded).
    pub fn node_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_nodes()];
        for t in &self.triangles {
            for k in 0..3 {
                let a = t[k];
                let b = t[(k + 1) % 3];
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
        }
        adj
    }

    /// Total mesh area.
    pub fn area(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| triangle_area(&self.points[t[0]], &self.points[t[1]], &self.points[t[2]]))
            .sum()
    }

    /// Smallest triangle angle over the whole mesh, in radians (π/2 for an
    /// empty mesh).
    pub fn min_angle(&self) -> f64 {
        self.triangles
            .iter()
            .map(|t| min_angle(&self.points[t[0]], &self.points[t[1]], &self.points[t[2]]))
            .fold(std::f64::consts::FRAC_PI_2, f64::min)
    }

    /// Average edge length (a proxy for the element size `h`).
    pub fn mean_edge_length(&self) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for t in &self.triangles {
            for k in 0..3 {
                let a = &self.points[t[k]];
                let b = &self.points[t[(k + 1) % 3]];
                total += a.distance(b);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Estimate of the graph diameter (longest shortest path in edge count),
    /// via a double BFS sweep.  The DSS consistency argument ties the number
    /// of message-passing layers to this quantity.
    pub fn diameter_estimate(&self) -> usize {
        if self.num_nodes() == 0 {
            return 0;
        }
        let adj = self.node_adjacency();
        let far = bfs_farthest(&adj, 0).0;
        bfs_farthest(&adj, far).1
    }

    /// Whether the node graph is connected.
    pub fn is_connected(&self) -> bool {
        if self.num_nodes() == 0 {
            return true;
        }
        let adj = self.node_adjacency();
        let mut seen = vec![false; adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &u in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        count == adj.len()
    }

    /// Remove nodes not referenced by any triangle and re-index.
    pub fn compact(&self) -> Mesh {
        let mut used = vec![false; self.num_nodes()];
        for t in &self.triangles {
            for &v in t {
                used[v] = true;
            }
        }
        let mut remap = vec![usize::MAX; self.num_nodes()];
        let mut points = Vec::new();
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = points.len();
                points.push(self.points[i]);
            }
        }
        let triangles: Vec<[usize; 3]> =
            self.triangles.iter().map(|t| [remap[t[0]], remap[t[1]], remap[t[2]]]).collect();
        Mesh::new(points, triangles)
    }

    /// Extract the sub-mesh induced by a set of node indices: triangles whose
    /// three vertices all belong to `nodes`.  Returns the sub-mesh and the
    /// local→global node map.
    pub fn submesh(&self, nodes: &[usize]) -> (Mesh, Vec<usize>) {
        let mut in_set = vec![false; self.num_nodes()];
        let mut remap = vec![usize::MAX; self.num_nodes()];
        for (loc, &g) in nodes.iter().enumerate() {
            in_set[g] = true;
            remap[g] = loc;
        }
        let points: Vec<Point2> = nodes.iter().map(|&g| self.points[g]).collect();
        let triangles: Vec<[usize; 3]> = self
            .triangles
            .iter()
            .filter(|t| t.iter().all(|&v| in_set[v]))
            .map(|t| [remap[t[0]], remap[t[1]], remap[t[2]]])
            .collect();
        (Mesh::new(points, triangles), nodes.to_vec())
    }
}

/// Boundary detection: nodes incident to an edge that belongs to exactly one
/// triangle.
fn detect_boundary(points: &[Point2], triangles: &[[usize; 3]]) -> Vec<bool> {
    // BTreeMap so the edge sweep below visits edges in key order: the result
    // is order-insensitive today, but hash-order iteration is banned from the
    // deterministic pipeline (detlint `nondet-iteration`) so a later change
    // cannot silently become seed-dependent.
    use std::collections::BTreeMap;
    let mut edge_count: BTreeMap<(usize, usize), u32> = BTreeMap::new();
    for t in triangles {
        for k in 0..3 {
            let a = t[k];
            let b = t[(k + 1) % 3];
            let key = (a.min(b), a.max(b));
            *edge_count.entry(key).or_insert(0) += 1;
        }
    }
    let mut boundary = vec![false; points.len()];
    for (&(a, b), &count) in &edge_count {
        if count == 1 {
            boundary[a] = true;
            boundary[b] = true;
        }
    }
    boundary
}

/// BFS from `start`; returns (farthest node, eccentricity).
fn bfs_farthest(adj: &[Vec<usize>], start: usize) -> (usize, usize) {
    let mut dist = vec![usize::MAX; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    dist[start] = 0;
    queue.push_back(start);
    let mut far = start;
    while let Some(v) = queue.pop_front() {
        if dist[v] > dist[far] {
            far = v;
        }
        for &u in &adj[v] {
            if dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                queue.push_back(u);
            }
        }
    }
    (far, dist[far])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles forming the unit square.
    fn square_mesh() -> Mesh {
        let points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(1.0, 1.0),
            Point2::new(0.0, 1.0),
        ];
        let triangles = vec![[0, 1, 2], [0, 2, 3]];
        Mesh::new(points, triangles)
    }

    /// Structured triangulated grid on [0,1]² with (n+1)² nodes.
    fn grid_mesh(n: usize) -> Mesh {
        let mut points = Vec::new();
        for i in 0..=n {
            for j in 0..=n {
                points.push(Point2::new(i as f64 / n as f64, j as f64 / n as f64));
            }
        }
        let idx = |i: usize, j: usize| i * (n + 1) + j;
        let mut triangles = Vec::new();
        for i in 0..n {
            for j in 0..n {
                triangles.push([idx(i, j), idx(i + 1, j), idx(i + 1, j + 1)]);
                triangles.push([idx(i, j), idx(i + 1, j + 1), idx(i, j + 1)]);
            }
        }
        Mesh::new(points, triangles)
    }

    #[test]
    fn basic_counts_and_area() {
        let m = square_mesh();
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(m.num_triangles(), 2);
        assert!((m.area() - 1.0).abs() < 1e-12);
        assert!(m.is_connected());
        // All four nodes of a single square are boundary nodes.
        assert_eq!(m.num_boundary_nodes(), 4);
        assert!(m.interior_nodes().is_empty());
    }

    #[test]
    fn grid_boundary_and_interior() {
        let m = grid_mesh(4); // 25 nodes, 16 boundary, 9 interior
        assert_eq!(m.num_nodes(), 25);
        assert_eq!(m.num_boundary_nodes(), 16);
        assert_eq!(m.interior_nodes().len(), 9);
        assert!((m.area() - 1.0).abs() < 1e-12);
        assert!(m.is_connected());
    }

    #[test]
    fn adjacency_is_symmetric_and_deduplicated() {
        let m = grid_mesh(3);
        let adj = m.node_adjacency();
        for (v, list) in adj.iter().enumerate() {
            let mut sorted = list.clone();
            sorted.dedup();
            assert_eq!(&sorted, list, "adjacency list must be sorted+deduped");
            for &u in list {
                assert!(adj[u].contains(&v), "adjacency must be symmetric");
                assert_ne!(u, v, "no self loops");
            }
        }
    }

    #[test]
    fn diameter_grows_with_grid_size() {
        let d1 = grid_mesh(4).diameter_estimate();
        let d2 = grid_mesh(8).diameter_estimate();
        assert!(d2 > d1);
        assert!(d1 >= 4);
    }

    #[test]
    fn min_angle_of_structured_grid() {
        let m = grid_mesh(4);
        // Right isoceles triangles: min angle = 45 degrees.
        assert!((m.min_angle() - std::f64::consts::FRAC_PI_4).abs() < 1e-10);
        assert!(m.mean_edge_length() > 0.0);
    }

    #[test]
    fn compact_removes_orphan_nodes() {
        let mut m = square_mesh();
        m.points.push(Point2::new(5.0, 5.0)); // orphan node
        m.boundary.push(false);
        let c = m.compact();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.num_triangles(), 2);
        assert!((c.area() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn submesh_extraction() {
        let m = grid_mesh(4);
        // take the left half nodes (j <= 2 columns i arbitrary)... use first 15 nodes
        let nodes: Vec<usize> = (0..15).collect();
        let (sub, map) = m.submesh(&nodes);
        assert_eq!(sub.num_nodes(), 15);
        assert_eq!(map, nodes);
        assert!(sub.num_triangles() > 0);
        assert!(sub.num_triangles() < m.num_triangles());
    }

    #[test]
    fn disconnected_mesh_detected() {
        let points = vec![
            Point2::new(0.0, 0.0),
            Point2::new(1.0, 0.0),
            Point2::new(0.0, 1.0),
            Point2::new(5.0, 5.0),
            Point2::new(6.0, 5.0),
            Point2::new(5.0, 6.0),
        ];
        let triangles = vec![[0, 1, 2], [3, 4, 5]];
        let m = Mesh::new(points, triangles);
        assert!(!m.is_connected());
    }
}
