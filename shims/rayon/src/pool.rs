//! The persistent worker pool behind the parallel iterator shim.
//!
//! # Design
//!
//! One global pool is created lazily on first use.  Its size comes from the
//! `RAYON_NUM_THREADS` environment variable (read once, like the real rayon)
//! and falls back to [`std::thread::available_parallelism`].  A pool of size
//! `N` spawns `N - 1` background workers: the thread that submits a batch
//! participates in executing it, so `N` threads are busy during a parallel
//! section and a pool of size 1 degenerates to plain inline execution with no
//! queueing or synchronisation at all.
//!
//! Work is submitted as a *batch* of independent jobs ([`ThreadPool::run_batch`]).
//! The submitting thread pushes every job onto a shared FIFO, then helps drain
//! the queue until its batch completes.  Because helpers pop *any* queued job,
//! nested parallel sections (a worker job that itself runs `par_iter`) cannot
//! deadlock: the blocked submitter keeps executing queued work, and every
//! claimed job runs on some live thread.
//!
//! # Panic propagation
//!
//! Each queued job runs under `catch_unwind`; the first captured payload is
//! stashed in the batch latch and re-raised on the submitting thread with
//! `resume_unwind` — but only after *all* jobs of the batch have finished, so
//! borrows captured by sibling jobs stay valid for their whole execution.
//! Worker threads therefore never die; the pool survives panicking payloads.
//!
//! # detsan instrumentation
//!
//! Under `--cfg detsan` every batch is assigned a process-unique id and each
//! job carries its `(batch, job)` identity while it runs, which is what lets
//! `crates/sanitizer` flag two jobs of one batch contending on the same
//! `TrackedMutex` (an order-sensitivity hazard).  When a schedule-fuzz seed
//! is active (`DETSAN_SCHEDULE_SEED` or `sanitizer::set_schedule_seed`), the
//! job vector is deterministically permuted per batch and the submitter's
//! drain loop yields on seeded coin flips to force submitter/worker
//! handoffs — an adversarial but reproducible schedule.  Without the cfg,
//! none of this code exists and the pool is byte-for-byte the plain FIFO.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock, PoisonError};

/// A type-erased, lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Completion tracker for one `run_batch` call.
struct Latch {
    state: Mutex<LatchState>,
    done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic: Option<Box<dyn Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Latch {
            state: Mutex::new(LatchState { remaining: count, panic: None }),
            done: Condvar::new(),
        }
    }

    fn complete(&self, panic_payload: Option<Box<dyn Any + Send>>) {
        // Latch state is only touched inside these two short critical
        // sections; poison here means the completion accounting itself is
        // corrupt, and propagating that panic beats blocking on a broken
        // condvar.
        // detlint::allow(mutex-poison): poisoned latch accounting is unrecoverable; propagate
        let mut state = self.state.lock().unwrap();
        state.remaining -= 1;
        if state.panic.is_none() {
            state.panic = panic_payload;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Block until every job has finished; return the first panic payload.
    fn wait(&self) -> Option<Box<dyn Any + Send>> {
        // See `complete`: a poisoned latch means the completion count may be
        // wrong, so waiting on it could hang forever.
        // detlint::allow(mutex-poison): poisoned latch accounting is unrecoverable; propagate
        let mut state = self.state.lock().unwrap();
        while state.remaining > 0 {
            state = self.done.wait(state).unwrap();
        }
        state.panic.take()
    }
}

struct Shared {
    queue: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    jobs: VecDeque<Job>,
    /// Set by `Drop`: workers finish the queued jobs, then exit.
    shutdown: bool,
}

/// A fixed-size pool of persistent worker threads.
///
/// Dropping a pool drains any queued work, signals the workers to exit and
/// joins them — no threads outlive the pool.  (The [`global`] pool lives in a
/// `OnceLock` and is intentionally never dropped.)
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    num_threads: usize,
}

impl ThreadPool {
    /// Create a pool that runs parallel sections on `num_threads` threads
    /// (the submitting thread plus `num_threads - 1` background workers).
    pub fn new(num_threads: usize) -> Self {
        let num_threads = num_threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            available: Condvar::new(),
        });
        let workers = (1..num_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rayon-shim-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn rayon shim worker thread")
            })
            .collect();
        ThreadPool { shared, workers, num_threads }
    }

    /// Number of threads that execute a parallel section.
    pub fn num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run every job in the batch to completion.
    ///
    /// Jobs may borrow caller data: this function only returns (or unwinds)
    /// after all of them have finished.  If one or more jobs panic, the first
    /// payload is re-raised on the calling thread.
    pub fn run_batch<'a>(&self, jobs: Vec<Box<dyn FnOnce() + Send + 'a>>) {
        // Wrap jobs with their (batch, job) identity and apply the seeded
        // permutation *before* the inline fast path, so a 1-thread pool sees
        // the same fuzzed execution order as a large one.
        #[cfg(detsan)]
        let (jobs, mut fuzz) = detsan::prepare(jobs);
        if self.num_threads == 1 || jobs.len() <= 1 {
            for job in jobs {
                job();
            }
            return;
        }
        let latch = Arc::new(Latch::new(jobs.len()));
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            for job in jobs {
                let latch = Arc::clone(&latch);
                let wrapped: Box<dyn FnOnce() + Send + 'a> = Box::new(move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(job));
                    latch.complete(result.err());
                });
                // SAFETY: jobs borrow caller data (slices being iterated,
                // result slots), so they are not `'static`; the transmute
                // erases the lifetime purely so they can sit in the shared
                // queue.  `run_batch` does not return (normally or by
                // unwinding) until `latch.wait()` confirms every job has
                // finished executing — `complete` runs after the job body,
                // panic or not — so the erased borrows strictly outlive every
                // use, and no queued job can survive past the stack frame
                // whose data it captures.
                let wrapped: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'a>, Job>(wrapped) };
                queue.jobs.push_back(wrapped);
            }
            self.shared.available.notify_all();
        }
        // Help drain the queue while the batch is in flight.  Popping *any*
        // job (not just our own) is what makes nested parallelism safe.
        loop {
            // Under an active schedule fuzz, flip a seeded coin before each
            // pop and yield on heads: workers get a window to claim the next
            // job, forcing submitter/worker handoff interleavings that plain
            // FIFO draining would rarely exercise.
            #[cfg(detsan)]
            if let Some(rng) = fuzz.as_mut() {
                if rng.coin() {
                    std::thread::yield_now();
                }
            }
            let job =
                self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner).jobs.pop_front();
            match job {
                Some(job) => job(),
                None => break,
            }
        }
        if let Some(payload) = latch.wait() {
            panic::resume_unwind(payload);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            queue.shutdown = true;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                // Finish queued work before honouring a shutdown request.
                if let Some(job) = queue.jobs.pop_front() {
                    break job;
                }
                if queue.shutdown {
                    return;
                }
                queue = shared.available.wait(queue).unwrap();
            }
        };
        job();
    }
}

/// The pool side of the concurrency sanitizer (see the module docs); only
/// compiled under `--cfg detsan`.
#[cfg(detsan)]
mod detsan {
    use sanitizer::BatchRng;

    /// One queued unit of work, as the pool stores it.
    type Job<'a> = Box<dyn FnOnce() + Send + 'a>;

    /// Tag every job of a batch with its `(batch, job)` identity and, when a
    /// schedule-fuzz seed is active, deterministically permute the execution
    /// order.  Job identity is the *pre-permutation* index, so contention
    /// reports name stable job numbers regardless of the seed.  When neither
    /// tracking nor fuzzing is on, the batch passes through untouched.
    pub(super) fn prepare<'a>(jobs: Vec<Job<'a>>) -> (Vec<Job<'a>>, Option<BatchRng>) {
        let seed = sanitizer::schedule_seed();
        if seed.is_none() && !sanitizer::tracking_enabled() {
            return (jobs, None);
        }
        let batch = sanitizer::next_batch_id();
        let mut wrapped: Vec<Job<'a>> = jobs
            .into_iter()
            .enumerate()
            .map(|(idx, job)| {
                let tagged: Job<'a> = Box::new(move || {
                    let _scope = sanitizer::enter_job(batch, idx as u32);
                    job();
                });
                tagged
            })
            .collect();
        let rng = seed.map(|s| {
            let mut rng = sanitizer::batch_rng(s, batch);
            rng.shuffle(&mut wrapped);
            rng
        });
        (wrapped, rng)
    }
}

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool, created on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| ThreadPool::new(num_threads_from_env()))
}

fn num_threads_from_env() -> usize {
    match std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn boxed<'a>(f: impl FnOnce() + Send + 'a) -> Box<dyn FnOnce() + Send + 'a> {
        Box::new(f)
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.num_threads(), 1);
        let main_id = std::thread::current().id();
        let mut observed = Vec::new();
        {
            let observed = &mut observed;
            pool.run_batch(vec![boxed(move || observed.push(std::thread::current().id()))]);
        }
        assert_eq!(observed, vec![main_id]);
    }

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..64)
            .map(|_| {
                let counter = &counter;
                boxed(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn jobs_can_write_to_disjoint_borrowed_slots() {
        let pool = ThreadPool::new(3);
        let mut slots = vec![0usize; 16];
        {
            let jobs: Vec<_> = slots
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| boxed(move || *slot = i * i))
                .collect();
            pool.run_batch(jobs);
        }
        let expected: Vec<usize> = (0..16).map(|i| i * i).collect();
        assert_eq!(slots, expected);
    }

    #[test]
    fn panic_in_a_worker_propagates_to_the_submitter() {
        let pool = ThreadPool::new(4);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<_> = (0..8)
                .map(|i| {
                    boxed(move || {
                        if i == 5 {
                            panic!("boom from job 5");
                        }
                    })
                })
                .collect();
            pool.run_batch(jobs);
        }));
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert!(msg.contains("boom"), "unexpected payload: {msg}");

        // The pool must survive the panic and keep executing work.
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let counter = &counter;
                boxed(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn panic_on_the_single_thread_path_propagates() {
        let pool = ThreadPool::new(1);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![boxed(|| panic!("inline boom"))]);
        }));
        assert!(result.is_err());
    }

    #[test]
    fn nested_batches_complete() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..4)
            .map(|_| {
                let total = &total;
                let pool_ref = &pool;
                boxed(move || {
                    let inner: Vec<_> = (0..4)
                        .map(|_| {
                            boxed(move || {
                                total.fetch_add(1, Ordering::SeqCst);
                            })
                        })
                        .collect();
                    pool_ref.run_batch(inner);
                })
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn env_sizing_defaults_are_sane() {
        // Whatever the environment, the computed size is at least 1.
        assert!(num_threads_from_env() >= 1);
    }

    /// With a schedule seed set, a 1-thread pool must execute a batch in the
    /// seeded permutation (a valid permutation, and across several batches
    /// not the identity), and revert to submission order once cleared.
    #[cfg(detsan)]
    #[test]
    fn schedule_fuzz_permutes_single_thread_execution_order() {
        let pool = ThreadPool::new(1);
        let run_order = |n: usize| {
            let order = Mutex::new(Vec::new());
            let jobs: Vec<_> = (0..n)
                .map(|i| {
                    let order = &order;
                    boxed(move || {
                        order.lock().unwrap_or_else(PoisonError::into_inner).push(i);
                    })
                })
                .collect();
            pool.run_batch(jobs);
            order.into_inner().unwrap_or_else(PoisonError::into_inner)
        };

        sanitizer::set_schedule_seed(0x0DE7_5A11);
        let mut any_permuted = false;
        for _ in 0..4 {
            let order = run_order(16);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..16).collect::<Vec<_>>(), "fuzz lost or duplicated a job");
            any_permuted |= order != (0..16).collect::<Vec<_>>();
        }
        assert!(any_permuted, "4 seeded batches of 16 jobs all ran in identity order");

        sanitizer::clear_schedule_seed();
        assert_eq!(run_order(16), (0..16).collect::<Vec<_>>(), "cleared seed must restore FIFO");
    }

    #[test]
    fn dropping_a_pool_joins_its_workers() {
        // Drop joins every worker handle; if a worker failed to observe the
        // shutdown flag and kept blocking on the condvar, this drop (and the
        // test) would hang forever instead of returning.
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let counter = &counter;
                boxed(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        pool.run_batch(jobs);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
        drop(pool);
    }
}
