//! Offline stand-in for the `rayon` crate — with **real** multithreading.
//!
//! The build environment has no network access, so this workspace vendors an
//! API-compatible subset of rayon.  Unlike the original sequential shim, this
//! implementation executes parallel iterators on a persistent
//! [`std::thread`]-based worker pool:
//!
//! * **Pool sizing** — `RAYON_NUM_THREADS` (read once at first use), falling
//!   back to [`std::thread::available_parallelism`].  A pool of size 1 runs
//!   everything inline with zero synchronisation.
//! * **Chunked scheduling** — every `par_iter`/`par_iter_mut`/`into_par_iter`
//!   splits its source into at most [`iter::NUM_CHUNKS`] contiguous chunks
//!   whose boundaries depend only on the data length, never on the pool size
//!   (see the [`iter`] module docs).
//! * **Determinism** — per-chunk reductions run sequentially and partials are
//!   combined in chunk order, so `sum`/`collect`/`reduce` results are
//!   bit-identical at every `RAYON_NUM_THREADS` setting.  This is what keeps
//!   the solver residual histories reproducible across machines and thread
//!   counts.
//! * **Panic propagation** — a panic inside a worker is captured and re-raised
//!   on the submitting thread after the batch finishes; the pool survives.
//!
//! Supported API: the `prelude` entry-point traits for slices, `Vec<T>` and
//! `Range<usize>`, the adapter chains used in this workspace (`map`, `zip`,
//! `enumerate`, `filter_map`, `for_each`, `sum`, `collect`, `count`,
//! `reduce`), plus [`join`], [`scope`] and [`current_num_threads`].
//! Swapping in the registry rayon is still a one-line `[workspace.dependencies]`
//! change; no source edits are needed.

pub mod iter;
pub mod pool;

/// The adapter-chain entry points (`par_iter`, `par_iter_mut`,
/// `into_par_iter`), mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

pub use iter::{FilterMap, Par, Producer};
pub use pool::ThreadPool;

/// Run both closures, potentially in parallel, and return both results.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra: Option<RA> = None;
    let mut rb: Option<RB> = None;
    {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> =
            vec![Box::new(|| ra = Some(oper_a())), Box::new(|| rb = Some(oper_b()))];
        pool::global().run_batch(jobs);
    }
    (ra.expect("join: first closure did not run"), rb.expect("join: second closure did not run"))
}

/// A scope in which borrowed tasks can be spawned (mirrors `rayon::scope`).
///
/// Spawned tasks are queued and executed on the pool when the scope closure
/// returns; tasks may spawn further tasks, which are drained in waves until
/// none remain.  `scope` only returns once every spawned task has finished.
pub struct Scope<'env> {
    #[allow(clippy::type_complexity)]
    tasks: std::sync::Mutex<Vec<Box<dyn for<'a> FnOnce(&'a Scope<'env>) + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Queue a task to run within the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: for<'a> FnOnce(&'a Scope<'env>) + Send + 'env,
    {
        self.tasks.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(Box::new(f));
    }
}

/// Create a scope for spawning borrowed tasks; blocks until all complete.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope { tasks: std::sync::Mutex::new(Vec::new()) };
    let result = f(&s);
    loop {
        let pending =
            std::mem::take(&mut *s.tasks.lock().unwrap_or_else(std::sync::PoisonError::into_inner));
        if pending.is_empty() {
            break;
        }
        let scope_ref = &s;
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = pending
            .into_iter()
            .map(|task| Box::new(move || task(scope_ref)) as Box<dyn FnOnce() + Send + '_>)
            .collect();
        pool::global().run_batch(jobs);
    }
    result
}

/// Number of threads the global pool executes parallel sections on.
pub fn current_num_threads() -> usize {
    pool::global().num_threads()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_iter() {
        // An array receiver also checks the unsized-coercion method lookup.
        let v = [1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1.0, 2.0];
        v.par_iter_mut().for_each(|x| *x += 1.0);
        assert_eq!(v, vec![2.0, 3.0]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v: Vec<usize> = (0usize..4).into_par_iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn join_can_borrow_mutably() {
        let mut left = vec![0.0; 128];
        let mut right = vec![0.0; 128];
        super::join(
            || left.iter_mut().for_each(|x| *x = 1.0),
            || right.iter_mut().for_each(|x| *x = 2.0),
        );
        assert!(left.iter().all(|&x| x == 1.0));
        assert!(right.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn scope_runs_spawned_and_nested_tasks() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|inner| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    inner.spawn(|_| {
                        counter.fetch_add(10, Ordering::SeqCst);
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8 + 80);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }
}
