//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal, API-compatible subset of rayon that executes everything
//! **sequentially**.  `par_iter()` / `par_iter_mut()` simply return the
//! standard library iterators, which support the same adapter chains
//! (`map`, `zip`, `filter_map`, `sum`, `collect`, `for_each`, ...) used in
//! this workspace.  Swapping in the real rayon later is a one-line
//! `Cargo.toml` change per crate; no source edits are needed.

pub mod prelude {
    /// Sequential replacement for `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'a> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Sequential replacement for `rayon::iter::IntoParallelRefMutIterator`.
    pub trait IntoParallelRefMutIterator<'a> {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'a mut self) -> Self::Iter;
    }

    /// Sequential replacement for `rayon::iter::IntoParallelIterator`.
    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<'a, T: 'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator<Item = &'a T>,
    {
        type Item = &'a T;
        type Iter = <&'a C as IntoIterator>::IntoIter;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<'a, T: 'a, C: ?Sized + 'a> IntoParallelRefMutIterator<'a> for C
    where
        &'a mut C: IntoIterator<Item = &'a mut T>,
    {
        type Item = &'a mut T;
        type Iter = <&'a mut C as IntoIterator>::IntoIter;
        fn par_iter_mut(&'a mut self) -> Self::Iter {
            self.into_iter()
        }
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Item = C::Item;
        type Iter = C::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Sequential replacement for `rayon::join`: runs both closures in order.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Number of "threads" in the sequential pool (always 1).
pub fn current_num_threads() -> usize {
    1
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let s: i32 = v.par_iter().map(|x| x * 2).sum();
        assert_eq!(s, 20);
    }

    #[test]
    fn par_iter_mut_mutates() {
        let mut v = vec![1.0, 2.0];
        v.par_iter_mut().for_each(|x| *x += 1.0);
        assert_eq!(v, vec![2.0, 3.0]);
    }

    #[test]
    fn into_par_iter_consumes() {
        let v: Vec<usize> = (0..4).into_par_iter().collect();
        assert_eq!(v, vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }
}
