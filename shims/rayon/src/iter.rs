//! Chunked, deterministic parallel iterators.
//!
//! # Chunked scheduling
//!
//! Every parallel operation splits its (indexed) source into at most
//! [`NUM_CHUNKS`] contiguous chunks whose boundaries depend *only on the
//! length of the data* — never on the pool size.  Each chunk is consumed by a
//! plain sequential iterator on one pool thread, and per-chunk results are
//! combined in chunk-index order on the submitting thread.
//!
//! This is the load-bearing determinism guarantee of the whole workspace:
//! because chunk boundaries and combination order are fixed, floating point
//! reductions (`sum`, and anything layered on top such as `par_dot`) produce
//! **bit-identical** results at every `RAYON_NUM_THREADS` setting, including
//! the sequential pool of size 1.  The trade-off is that we give up rayon's
//! adaptive work-stealing splits; with ≤ `NUM_CHUNKS`-way slack per operation
//! the static schedule balances fine for the regular kernels used here.
//!
//! # Shape of the implementation
//!
//! [`Producer`] mirrors rayon's internal producer concept: a splittable,
//! exactly-sized source that converts into a sequential iterator.  Slices,
//! mutable slices, `Vec`s and `Range<usize>` are producers; `map`, `zip` and
//! `enumerate` are producer adapters (so they stay splittable), while
//! `filter_map` — which loses indexability — is a thin terminal wrapper that
//! applies the closure chunk-locally.  The public [`Par`] wrapper exposes the
//! adapter-chain API the workspace uses (`map`, `zip`, `enumerate`,
//! `filter_map`, `for_each`, `sum`, `collect`, `count`, `reduce`).

use std::iter::Sum;
use std::ops::Range;
use std::sync::Arc;

use crate::pool::{global, ThreadPool};

/// Maximum number of chunks a parallel operation is split into.
///
/// Fixed — independent of thread count — so reduction order, and therefore
/// floating point rounding, is identical at every pool size.  16 gives a pool
/// of up to 16 threads at least one chunk each and smaller pools enough slack
/// to balance uneven chunk costs.
pub const NUM_CHUNKS: usize = 16;

/// A splittable, exactly-sized work source (rayon's producer concept).
pub trait Producer: Sized + Send {
    /// Item yielded by the sequential side.
    type Item: Send;
    /// Sequential iterator over one chunk.
    type IntoIter: Iterator<Item = Self::Item>;

    /// Remaining number of items.
    fn len(&self) -> usize;
    /// Whether no items remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Split into `[0, mid)` and `[mid, len)`.
    fn split_at(self, mid: usize) -> (Self, Self);
    /// Convert into a sequential iterator over all remaining items.
    fn into_seq(self) -> Self::IntoIter;
}

/// Split a producer into deterministic, near-equal contiguous chunks.
fn split_chunks<P: Producer>(producer: P) -> Vec<P> {
    let len = producer.len();
    let n = len.clamp(1, NUM_CHUNKS);
    let base = len / n;
    let rem = len % n;
    let mut chunks = Vec::with_capacity(n);
    let mut rest = producer;
    for i in 0..n - 1 {
        let size = base + usize::from(i < rem);
        let (head, tail) = rest.split_at(size);
        chunks.push(head);
        rest = tail;
    }
    chunks.push(rest);
    chunks
}

/// Run `consume` over every chunk of `producer` on `pool`, returning the
/// per-chunk results in chunk order.
pub(crate) fn consume_chunks<P, R, F>(pool: &ThreadPool, producer: P, consume: F) -> Vec<R>
where
    P: Producer,
    R: Send,
    F: Fn(P::IntoIter) -> R + Sync,
{
    let chunks = split_chunks(producer);
    // The inline bypass skips `run_batch`, so it must stay off while the
    // sanitizer's pool hooks are active: job identities and seeded
    // permutations have to cover 1-thread and 1-chunk sections too.
    #[cfg(detsan)]
    let inline = (pool.num_threads() == 1 || chunks.len() == 1) && !sanitizer::pool_hooks_active();
    #[cfg(not(detsan))]
    let inline = pool.num_threads() == 1 || chunks.len() == 1;
    if inline {
        return chunks.into_iter().map(|chunk| consume(chunk.into_seq())).collect();
    }
    let k = chunks.len();
    let mut results: Vec<Option<R>> = Vec::with_capacity(k);
    results.resize_with(k, || None);
    let consume = &consume;
    let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .into_iter()
        .zip(results.iter_mut())
        .map(|(chunk, slot)| {
            Box::new(move || *slot = Some(consume(chunk.into_seq())))
                as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run_batch(jobs);
    results.into_iter().map(|slot| slot.expect("pool failed to fill a chunk slot")).collect()
}

// ---------------------------------------------------------------------------
// Leaf producers
// ---------------------------------------------------------------------------

/// Producer over `&[T]`.
pub struct SliceProducer<'a, T>(&'a [T]);

impl<'a, T: Sync> Producer for SliceProducer<'a, T> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at(mid);
        (SliceProducer(a), SliceProducer(b))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// Producer over `&mut [T]`.
pub struct SliceMutProducer<'a, T>(&'a mut [T]);

impl<'a, T: Send> Producer for SliceMutProducer<'a, T> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.0.split_at_mut(mid);
        (SliceMutProducer(a), SliceMutProducer(b))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0.iter_mut()
    }
}

/// Producer over `Range<usize>`.
pub struct RangeProducer(Range<usize>);

impl Producer for RangeProducer {
    type Item = usize;
    type IntoIter = Range<usize>;

    fn len(&self) -> usize {
        self.0.end.saturating_sub(self.0.start)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let split = self.0.start + mid;
        (RangeProducer(self.0.start..split), RangeProducer(split..self.0.end))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0
    }
}

/// Producer that owns a `Vec<T>`.
pub struct VecProducer<T>(Vec<T>);

impl<T: Send> Producer for VecProducer<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let mut head = self.0;
        let tail = head.split_off(mid);
        (VecProducer(head), VecProducer(tail))
    }

    fn into_seq(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

// ---------------------------------------------------------------------------
// Adapter producers
// ---------------------------------------------------------------------------

/// `map` adapter: stays splittable, shares the closure via `Arc`.
pub struct MapProducer<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> Producer for MapProducer<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> R + Send + Sync,
    R: Send,
{
    type Item = R;
    type IntoIter = MapSeqIter<P::IntoIter, F>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (MapProducer { base: a, f: Arc::clone(&self.f) }, MapProducer { base: b, f: self.f })
    }

    fn into_seq(self) -> Self::IntoIter {
        MapSeqIter { inner: self.base.into_seq(), f: self.f }
    }
}

/// Sequential side of [`MapProducer`].
pub struct MapSeqIter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F, R> Iterator for MapSeqIter<I, F>
where
    I: Iterator,
    F: Fn(I::Item) -> R,
{
    type Item = R;

    fn next(&mut self) -> Option<R> {
        self.inner.next().map(|x| (self.f)(x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// `zip` adapter: splits both sides at the same index.
pub struct ZipProducer<A, B> {
    a: A,
    b: B,
}

impl<A: Producer, B: Producer> Producer for ZipProducer<A, B> {
    type Item = (A::Item, B::Item);
    type IntoIter = std::iter::Zip<A::IntoIter, B::IntoIter>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(mid);
        let (b1, b2) = self.b.split_at(mid);
        (ZipProducer { a: a1, b: b1 }, ZipProducer { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::IntoIter {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// `enumerate` adapter: carries the global base index through splits.
pub struct EnumerateProducer<P> {
    base: P,
    offset: usize,
}

impl<P: Producer> Producer for EnumerateProducer<P> {
    type Item = (usize, P::Item);
    type IntoIter = EnumerateSeqIter<P::IntoIter>;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (a, b) = self.base.split_at(mid);
        (
            EnumerateProducer { base: a, offset: self.offset },
            EnumerateProducer { base: b, offset: self.offset + mid },
        )
    }

    fn into_seq(self) -> Self::IntoIter {
        EnumerateSeqIter { inner: self.base.into_seq(), next_index: self.offset }
    }
}

/// Sequential side of [`EnumerateProducer`].
pub struct EnumerateSeqIter<I> {
    inner: I,
    next_index: usize,
}

impl<I: Iterator> Iterator for EnumerateSeqIter<I> {
    type Item = (usize, I::Item);

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().map(|x| {
            let i = self.next_index;
            self.next_index += 1;
            (i, x)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

// ---------------------------------------------------------------------------
// Public parallel iterator wrapper
// ---------------------------------------------------------------------------

/// A parallel iterator over a [`Producer`] chain.
pub struct Par<P> {
    producer: P,
}

impl<P: Producer> Par<P> {
    pub(crate) fn new(producer: P) -> Self {
        Par { producer }
    }

    /// Exact number of items.
    pub fn len(&self) -> usize {
        self.producer.len()
    }

    /// Whether the iterator is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Map every item through `f`.
    pub fn map<R, F>(self, f: F) -> Par<MapProducer<P, F>>
    where
        F: Fn(P::Item) -> R + Send + Sync,
        R: Send,
    {
        Par::new(MapProducer { base: self.producer, f: Arc::new(f) })
    }

    /// Iterate two parallel iterators in lockstep.
    pub fn zip<Q: Producer>(self, other: Par<Q>) -> Par<ZipProducer<P, Q>> {
        Par::new(ZipProducer { a: self.producer, b: other.producer })
    }

    /// Pair every item with its global index.
    pub fn enumerate(self) -> Par<EnumerateProducer<P>> {
        Par::new(EnumerateProducer { base: self.producer, offset: 0 })
    }

    /// Keep the `Some` results of `f` (loses indexability; terminal adapters
    /// only).
    pub fn filter_map<R, F>(self, f: F) -> FilterMap<P, F>
    where
        F: Fn(P::Item) -> Option<R> + Send + Sync,
        R: Send,
    {
        FilterMap { base: self.producer, f: Arc::new(f) }
    }

    /// Run `f` on every item.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(P::Item) + Send + Sync,
    {
        consume_chunks(global(), self.producer, |iter| iter.for_each(&f));
    }

    /// Sum the items chunk-wise, combining partials in chunk order.
    ///
    /// Deterministic: chunk boundaries depend only on the length, so the
    /// result is bit-identical at every thread count.
    pub fn sum<S>(self) -> S
    where
        S: Sum<P::Item> + Sum<S> + Send,
    {
        consume_chunks(global(), self.producer, |iter| iter.sum::<S>()).into_iter().sum()
    }

    /// Collect all items, preserving order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<P::Item>,
    {
        let parts: Vec<Vec<P::Item>> =
            consume_chunks(global(), self.producer, |iter| iter.collect());
        parts.into_iter().flatten().collect()
    }

    /// Number of items (consumes the iterator, like rayon).
    pub fn count(self) -> usize {
        consume_chunks(global(), self.producer, |iter| iter.count()).into_iter().sum()
    }

    /// Chunk-wise fold + ordered combine (rayon's `reduce` signature).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> P::Item
    where
        ID: Fn() -> P::Item + Send + Sync,
        OP: Fn(P::Item, P::Item) -> P::Item + Send + Sync,
    {
        consume_chunks(global(), self.producer, |iter| iter.fold(identity(), &op))
            .into_iter()
            .fold(identity(), &op)
    }
}

/// Terminal `filter_map` wrapper (no longer splittable below chunk level).
pub struct FilterMap<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, F, R> FilterMap<P, F>
where
    P: Producer,
    F: Fn(P::Item) -> Option<R> + Send + Sync,
    R: Send,
{
    /// Collect the retained items, preserving source order.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<R>,
    {
        let f = &self.f;
        let parts: Vec<Vec<R>> =
            consume_chunks(global(), self.base, |iter| iter.filter_map(|x| f(x)).collect());
        parts.into_iter().flatten().collect()
    }

    /// Run `g` on every retained item.
    pub fn for_each<G>(self, g: G)
    where
        G: Fn(R) + Send + Sync,
    {
        let f = &self.f;
        consume_chunks(global(), self.base, |iter| iter.filter_map(|x| f(x)).for_each(&g));
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (the `prelude`)
// ---------------------------------------------------------------------------

/// `.par_iter()` on borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = Par<SliceProducer<'a, T>>;

    fn par_iter(&'a self) -> Self::Iter {
        Par::new(SliceProducer(self))
    }
}

/// `.par_iter_mut()` on mutably borrowed collections.
pub trait IntoParallelRefMutIterator<'a> {
    /// Item yielded by the parallel iterator.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter;
    /// Mutably borrowing parallel iterator.
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = Par<SliceMutProducer<'a, T>>;

    fn par_iter_mut(&'a mut self) -> Self::Iter {
        Par::new(SliceMutProducer(self))
    }
}

/// `.into_par_iter()` on owned sources.
pub trait IntoParallelIterator {
    /// Item yielded by the parallel iterator.
    type Item: Send;
    /// The parallel iterator type.
    type Iter;
    /// Consuming parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = Par<RangeProducer>;

    fn into_par_iter(self) -> Self::Iter {
        Par::new(RangeProducer(self))
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = Par<VecProducer<T>>;

    fn into_par_iter(self) -> Self::Iter {
        Par::new(VecProducer(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ThreadPool;

    #[test]
    fn chunks_cover_every_index_exactly_once() {
        for len in [0usize, 1, 2, 3, 15, 16, 17, 31, 103, 1000] {
            let chunks = split_chunks(RangeProducer(0..len));
            assert!(chunks.len() <= NUM_CHUNKS);
            assert_eq!(chunks.len(), len.clamp(1, NUM_CHUNKS));
            let mut seen: Vec<usize> = Vec::new();
            for chunk in chunks {
                seen.extend(chunk.into_seq());
            }
            let expected: Vec<usize> = (0..len).collect();
            assert_eq!(seen, expected, "len {len} not covered exactly once in order");
        }
    }

    #[test]
    fn chunk_boundaries_do_not_depend_on_pool_size() {
        // The same chunked reduction over pools of different sizes must be
        // bit-identical — the determinism contract of the shim.
        let data: Vec<f64> = (0..100_000).map(|i| (i as f64 * 0.7).sin() * 1e-3 + 1.0).collect();
        let pools = [ThreadPool::new(1), ThreadPool::new(3), ThreadPool::new(7)];
        let sums: Vec<f64> = pools
            .iter()
            .map(|pool| {
                consume_chunks(pool, SliceProducer(&data), |iter| iter.sum::<f64>())
                    .into_iter()
                    .sum::<f64>()
            })
            .collect();
        assert_eq!(sums[0].to_bits(), sums[1].to_bits());
        assert_eq!(sums[0].to_bits(), sums[2].to_bits());
    }

    #[test]
    fn map_zip_sum_matches_sequential() {
        let x: Vec<f64> = (0..50_000).map(|i| (i % 13) as f64 * 0.25).collect();
        let y: Vec<f64> = (0..50_000).map(|i| (i % 7) as f64 - 3.0).collect();
        let par: f64 = x.par_iter().zip(y.par_iter()).map(|(a, b)| a * b).sum();
        let seq: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        assert!((par - seq).abs() < 1e-9 * seq.abs().max(1.0));
    }

    #[test]
    fn par_iter_mut_enumerate_for_each() {
        let mut v = vec![0.0f64; 1000];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x = i as f64 * 2.0);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as f64 * 2.0);
        }
    }

    #[test]
    fn collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        let expected: Vec<usize> = (0..1000).map(|x| x * 2).collect();
        assert_eq!(doubled, expected);
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let v: Vec<usize> = (0..100).collect();
        let ok: Result<Vec<usize>, String> = v.par_iter().map(|&x| Ok(x)).collect();
        assert_eq!(ok.unwrap(), v);
        let err: Result<Vec<usize>, String> =
            v.par_iter().map(|&x| if x == 57 { Err("bad".to_string()) } else { Ok(x) }).collect();
        assert_eq!(err.unwrap_err(), "bad");
    }

    #[test]
    fn filter_map_collect_matches_sequential() {
        let v: Vec<usize> = (0..977).collect();
        let par: Vec<usize> =
            v.par_iter().filter_map(|&x| if x % 3 == 0 { Some(x * x) } else { None }).collect();
        let seq: Vec<usize> =
            v.iter().filter_map(|&x| if x % 3 == 0 { Some(x * x) } else { None }).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn into_par_iter_on_ranges_and_vecs() {
        let squares: Vec<usize> = (0usize..64).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(squares, expected);

        let owned: Vec<String> = vec!["a".to_string(), "b".to_string(), "c".to_string()];
        let lens: Vec<usize> = owned.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 1, 1]);
    }

    #[test]
    fn reduce_and_count() {
        let v: Vec<usize> = (1..=100).collect();
        let max = v.par_iter().map(|&x| x).reduce(|| 0, |a, b| a.max(b));
        assert_eq!(max, 100);
        assert_eq!(v.par_iter().count(), 100);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<f64> = Vec::new();
        let s: f64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, 0.0);
        let c: Vec<f64> = v.par_iter().map(|&x| x).collect();
        assert!(c.is_empty());
        v.clone().into_par_iter().for_each(|_| panic!("must not run"));
    }
}
