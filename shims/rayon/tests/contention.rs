//! Same-batch contention detection through the real pool: two jobs of one
//! parallel batch acquiring the same `TrackedMutex` is an
//! order-sensitivity hazard unless the site carries a reviewed
//! `commutative` annotation.  Runs only under `--cfg detsan`.

#![cfg(detsan)]

use rayon::prelude::*;
use sanitizer::TrackedMutex;

#[test]
fn unannotated_same_batch_contention_is_flagged() {
    sanitizer::force_tracking(true);
    let m = TrackedMutex::new(0u64, "test::contend-strict");
    // Every chunk job of this batch bumps the same counter: maximally
    // order-sensitive shared state.
    (0..256usize).into_par_iter().for_each(|i| {
        *m.lock() += i as u64;
    });
    assert_eq!(*m.lock(), 255 * 256 / 2, "the sum itself is still correct");

    let findings = sanitizer::findings();
    let hits: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == "batch-order-sensitivity" && f.label == "test::contend-strict")
        .collect();
    assert_eq!(hits.len(), 1, "one finding per instance expected: {hits:?}");
    assert!(hits[0].allow_reason.is_none(), "unannotated contention must be live");
}

#[test]
fn commutative_annotated_contention_is_suppressed() {
    sanitizer::force_tracking(true);
    let m = TrackedMutex::new_commutative(
        Vec::new(),
        "test::contend-commut",
        "append-only log; aggregation is order-insensitive",
    );
    (0..256usize).into_par_iter().for_each(|i| {
        m.lock().push(i as u64);
    });
    assert_eq!(m.lock().len(), 256);

    let findings = sanitizer::findings();
    let hits: Vec<_> = findings.iter().filter(|f| f.label == "test::contend-commut").collect();
    for f in &hits {
        assert_eq!(f.rule, "batch-order-sensitivity", "unexpected finding: {f:?}");
        assert!(
            f.allow_reason.is_some(),
            "commutative contention must be suppressed, not live: {f:?}"
        );
    }
}

#[test]
fn disjoint_state_is_not_flagged() {
    sanitizer::force_tracking(true);
    // One mutex per slot: no two jobs of a batch share an instance.
    let slots: Vec<TrackedMutex<u64>> =
        (0..16).map(|_| TrackedMutex::new(0, "test::contend-disjoint")).collect();
    slots.par_iter().enumerate().for_each(|(i, slot)| {
        *slot.lock() += i as u64;
    });
    assert!(
        !sanitizer::findings().iter().any(|f| f.label == "test::contend-disjoint"),
        "per-instance state must not cross-flag between instances of one site"
    );
}
