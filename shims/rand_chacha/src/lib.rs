//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (RFC 8439 quarter-round
//! schedule, 8 double-rounds) over the vendored `rand` shim's traits.  The
//! word-to-`u64` packing differs from the real `rand_chacha`, so value
//! streams are reproducible within this workspace but not bit-identical to
//! upstream — which no code here relies on.

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;
const BUF_WORDS: usize = 16;

/// ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key + constants + counter + nonce block.
    state: [u32; 16],
    /// Buffered keystream words from the last block.
    buf: [u32; BUF_WORDS],
    /// Next unread index into `buf` (BUF_WORDS = exhausted).
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = working[i].wrapping_add(self.state[i]);
        }
        // 64-bit block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.idx >= BUF_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// The current 64-bit block counter (for API parity with upstream).
    pub fn get_word_pos(&self) -> u128 {
        let counter = self.state[12] as u128 | ((self.state[13] as u128) << 32);
        counter * 16 + self.idx as u128
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[4 * i..4 * i + 4]);
            state[4 + i] = u32::from_le_bytes(bytes);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng { state, buf: [0; BUF_WORDS], idx: BUF_WORDS }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(123);
        let mut b = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..200 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_works_through_the_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..500 {
            let v = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn keystream_has_no_short_cycle() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        // Next blocks must not repeat the first words (counter advances).
        for _ in 0..64 {
            let w = rng.next_u64();
            assert_ne!(w, first[0]);
        }
    }
}
