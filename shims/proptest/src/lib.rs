//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro, `ProptestConfig::with_cases`,
//! range and tuple strategies, `collection::vec` / `collection::btree_set`,
//! and the `prop_assert!` / `prop_assert_eq!` assertion macros.
//!
//! Sampling is **deterministic**: every test function derives its RNG seed
//! from a fixed workspace constant combined with an FNV-1a hash of the test
//! name, so `cargo test` is reproducible run to run and machine to machine.
//! Set `PROPTEST_SEED=<u64>` to explore a different deterministic stream.
//! There is no shrinking — on failure the macro panics with the case number,
//! the seed and the debug-printed inputs, which is enough to reproduce.

use std::ops::Range;

#[doc(hidden)]
pub use rand as __rand;

pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test function.
        pub cases: u32,
        /// Base RNG seed; combined with the test name hash.
        pub rng_seed: u64,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, rng_seed: super::default_seed() }
        }
    }

    impl ProptestConfig {
        /// Run `cases` random cases per test (the only knob our tests use).
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }
}

/// Fixed workspace-wide base seed, overridable with `PROPTEST_SEED`.
pub fn default_seed() -> u64 {
    std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xDD11_61A1_5EED_2024)
}

/// FNV-1a hash of the test name, mixed into the seed so distinct tests see
/// distinct (but fixed) streams.
pub fn seed_for_test(base: u64, name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    base ^ h
}

pub mod strategy {
    use super::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A value generator (radically simplified from upstream: no shrink tree).
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, i64, i32, f64, f32);

    /// A strategy producing one constant value (upstream `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident, $idx:tt);+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, 0)
        (A, 0; B, 1)
        (A, 0; B, 1; C, 2)
        (A, 0; B, 1; C, 2; D, 3)
        (A, 0; B, 1; C, 2; D, 3; E, 4)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::Range;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;

    /// Size specification: a fixed length or a half-open range of lengths.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn sample(&self, rng: &mut StdRng) -> usize {
            if self.lo + 1 >= self.hi {
                self.lo
            } else {
                rng.gen_range(self.lo..self.hi)
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Strategy for `BTreeSet<S::Value>` with target size drawn from `size`.
    ///
    /// Like upstream, the resulting set may be smaller than the sampled
    /// target when the element strategy produces duplicates, but it is
    /// never empty when the minimum size is ≥ 1.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let target = self.size.sample(rng).max(self.size.lo);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 50 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            if out.is_empty() && self.size.lo > 0 {
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The workhorse macro: expands each `fn name(pat in strategy, ...) { body }`
/// item into a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let __config = $config;
            let __seed = $crate::seed_for_test(__config.rng_seed, concat!(module_path!(), "::", stringify!($name)));
            let mut __rng =
                <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(__seed);
            for __case in 0..__config.cases {
                let __inputs = ( $( ($strat).generate(&mut __rng), )+ );
                let __debug = format!("{:?}", __inputs);
                let ( $($arg,)+ ) = __inputs;
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest case {}/{} failed (seed {:#x}): {}\n  inputs: {}",
                        __case + 1, __config.cases, __seed, __msg, __debug
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; reports the failing inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    ));
                }
            }
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err(format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    ));
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable_and_name_dependent() {
        let a = crate::seed_for_test(1, "mod::test_a");
        let b = crate::seed_for_test(1, "mod::test_b");
        assert_ne!(a, b);
        assert_eq!(a, crate::seed_for_test(1, "mod::test_a"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_obeys_size(v in collection::vec((0usize..5, 0.0f64..1.0), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            for (i, f) in &v {
                prop_assert!(*i < 5);
                prop_assert!((0.0..1.0).contains(f));
            }
        }

        #[test]
        fn btree_set_is_nonempty(s in collection::btree_set(0usize..50, 1..20)) {
            prop_assert!(!s.is_empty() && s.len() < 20);
            prop_assert!(s.iter().all(|&v| v < 50));
        }

        #[test]
        fn fixed_len_vec(v in collection::vec(-1.0f64..1.0, 20)) {
            prop_assert_eq!(v.len(), 20);
        }
    }
}
