//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros — backed
//! by a wall-clock harness designed for *trustworthy* numbers rather than
//! pretty plots:
//!
//! 1. **Calibration** — the payload iteration count is doubled until one
//!    timed batch lasts at least a fixed floor (so a sample is never a single
//!    `Instant::now()` quantum), then frozen;
//! 2. **Sampling** — every sample runs the *same* number of iterations, so
//!    samples are directly comparable and scheduler noise shows up as sample
//!    spread instead of silently skewing a single long measurement;
//! 3. **Reporting** — the per-iteration **median** (robust central tendency)
//!    and **min** (best-case, the closest estimate of the true cost on a
//!    noisy machine) are printed, never a lone wall-clock figure.
//!
//! No statistics beyond that, no plots or baselines; swap in the real
//! criterion when the registry is reachable.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    measurement_time: Duration,
    sample_count: usize,
    /// Iterations per sample chosen by calibration (for reporting).
    iters_per_sample: u64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut payload: F) {
        // Calibrate: double the batch size until one batch lasts at least the
        // floor, so a sample is never dominated by timer quantisation.  The
        // floor is a fraction of the measurement window but never below 200µs.
        let batch_floor = (self.measurement_time / (4 * self.sample_count as u32))
            .max(Duration::from_micros(200));
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            let elapsed = start.elapsed();
            if elapsed >= batch_floor || iters >= 1 << 24 {
                break;
            }
            // Jump straight to the projected batch size (at least doubling)
            // so calibration converges in a few batches.
            let projected = if elapsed.is_zero() {
                iters * 8
            } else {
                (batch_floor.as_nanos() as u64).saturating_mul(iters)
                    / (elapsed.as_nanos() as u64).max(1)
                    + 1
            };
            // Grow at least 2× but never past the cap (`clamp` would panic
            // when the lower bound exceeds the cap).
            iters = projected.max(iters * 2).min(1 << 24);
        }
        self.iters_per_sample = iters;

        // Every sample runs the same, frozen iteration count.
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(payload());
            }
            self.samples.push((start.elapsed() / iters as u32).max(Duration::from_nanos(1)));
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{} ns", ns)
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

fn run_one(
    full_id: &str,
    measurement_time: Duration,
    sample_count: usize,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut samples = Vec::with_capacity(sample_count);
    let mut bencher =
        Bencher { samples: &mut samples, measurement_time, sample_count, iters_per_sample: 0 };
    f(&mut bencher);
    let iters = bencher.iters_per_sample;
    if samples.is_empty() {
        println!("{full_id:<40} (no samples)");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    println!(
        "{full_id:<40} median {:>12}   min {:>12}   ({} samples × {} iters)",
        format_duration(median),
        format_duration(min),
        samples.len(),
        iters
    );
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.measurement_time, self.sample_count, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.measurement_time, self.sample_count, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// The harness entry point.
pub struct Criterion {
    measurement_time: Duration,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(500), sample_count: 10 }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        // `cargo bench -- <filter>` filtering is not implemented in the shim.
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_count: self.sample_count,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), self.measurement_time, self.sample_count, &mut f);
        self
    }

    pub fn final_summary(&self) {}
}

/// Mirrors `criterion::criterion_group!`: both the simple and the
/// `name/config/targets` forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20)).sample_size(3);
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.finish();
        assert!(calls > 0, "payload was never executed");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("spmv", 8).to_string(), "spmv/8");
    }

    #[test]
    fn format_duration_scales() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
