//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal deterministic PRNG stack exposing the subset of the rand 0.8 API
//! the workspace uses: [`Rng::gen_range`] over integer and float ranges,
//! [`SeedableRng::seed_from_u64`], [`seq::SliceRandom::shuffle`], and the
//! [`rngs::StdRng`] generator.  The generator is xoshiro256++ seeded through
//! SplitMix64 — not the cryptographic streams of the real crate, but a
//! high-quality deterministic source that is more than adequate for mesh
//! jitter, weight init and test-fixture sampling.
//!
//! Streams differ from the real `rand`/`rand_chacha`, so seeds reproduce
//! runs *within* this workspace only.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step — used for seeding and as the seed expander, mirroring
/// how `rand` itself expands `seed_from_u64`.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core RNG trait (stand-in for `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (stand-in for `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut s = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut s).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a range (stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // 53 random mantissa bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                // Guard against rounding up to the (exclusive) upper bound.
                if v as $t >= self.end { self.start } else { v as $t }
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// The user-facing RNG extension trait (stand-in for `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (stand-in for `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&i));
        }
    }

    #[test]
    fn float_sampling_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0f64..1.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
        assert!(samples.iter().any(|&v| v < 0.05) && samples.iter().any(|&v| v > 0.95));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice unchanged");
    }

    #[test]
    fn seed_from_u64_differs_across_seeds() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
